"""Abstract XML Schema — the paper's 4-tuple ``(Σ, T, ρ, R)`` (Section 3).

* ``Σ`` — element labels (derived from content models and root map);
* ``T`` — type names, each declared as a :class:`SimpleType` (from
  :mod:`repro.schema.simple`) or a :class:`ComplexType`;
* ``ρ`` — the declarations themselves: a complex type pairs a content
  regular expression ``regexp_τ`` with a label→type assignment
  ``types_τ`` whose domain is exactly the labels used in the expression;
* ``R`` — the partial map from permitted root labels to their types.

:class:`Schema` owns a cache of compiled content-model DFAs and the
per-type "useful symbol" analysis the subsumption fixpoint consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Union

from repro.automata.compiled import CompiledDFA, SymbolTable
from repro.automata.dfa import DFA
from repro.errors import SchemaError
from repro.remodel.ast import Regex
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model
from repro.schema.simple import SimpleType


@dataclass(frozen=True)
class AttributeDecl:
    """An attribute declared on a complex type.

    ``type_name`` references a simple type in the owning schema; the
    attribute-validation extension (outside the paper's structural
    model) enforces presence of required attributes, absence of
    undeclared ones, and value conformance.
    """

    name: str
    type_name: str
    required: bool = False

    def __repr__(self) -> str:
        flag = "required" if self.required else "optional"
        return f"AttributeDecl({self.name!r}: {self.type_name}, {flag})"


@dataclass(frozen=True)
class ComplexType:
    """A complex type declaration ``τ : (regexp_τ, types_τ)``.

    ``child_types`` maps each label in ``regexp_τ``'s symbol set to the
    *name* of the type assigned to children with that label — the
    paper's ``types_τ`` function, by name so declarations can be
    mutually recursive.  ``attributes`` is the attribute-validation
    extension; it defaults to empty (the paper's model).
    """

    name: str
    content: Regex
    child_types: Mapping[str, str] = field(default_factory=dict)
    attributes: Mapping[str, AttributeDecl] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "child_types", dict(self.child_types))
        object.__setattr__(self, "attributes", dict(self.attributes))
        used = self.content.symbols()
        declared = set(self.child_types)
        if used != declared:
            missing = used - declared
            extra = declared - used
            raise SchemaError(
                f"complex type {self.name!r}: child-type map must cover "
                f"exactly the content-model labels "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        for attr_name, declaration in self.attributes.items():
            if attr_name != declaration.name:
                raise SchemaError(
                    f"complex type {self.name!r}: attribute map key "
                    f"{attr_name!r} does not match declaration "
                    f"{declaration.name!r}"
                )

    def required_attributes(self) -> frozenset[str]:
        return frozenset(
            name for name, decl in self.attributes.items() if decl.required
        )

    def __repr__(self) -> str:
        return f"ComplexType({self.name!r}, {self.content.to_source()})"


TypeDef = Union[SimpleType, ComplexType]


def is_simple(declaration: TypeDef) -> bool:
    return isinstance(declaration, SimpleType)


def is_complex(declaration: TypeDef) -> bool:
    return isinstance(declaration, ComplexType)


class Schema:
    """An abstract XML Schema.

    Args:
        types: declarations ``ρ``, keyed by type name.  SimpleType
            declarations may be registered under a schema-local name
            that differs from the SimpleType's own ``name``.
        roots: the partial function ``R``: root label → type name.
        name: optional display name for diagnostics.
    """

    def __init__(
        self,
        types: Mapping[str, TypeDef],
        roots: Mapping[str, str],
        *,
        name: str = "",
        identity: Optional[Mapping[str, list]] = None,
    ):
        self.name = name
        self.types: dict[str, TypeDef] = dict(types)
        self.roots: dict[str, str] = dict(roots)
        #: Identity constraints (key/unique/keyref) grouped by the
        #: declaring element label — checked by
        #: :func:`repro.schema.identity.check_identity`, outside the
        #: structural model (the paper's future-work extension).
        self.identity: dict[str, list] = {
            label: list(declared)
            for label, declared in (identity or {}).items()
        }
        self._dfas: dict[str, DFA] = {}
        self._compiled: dict[str, CompiledDFA] = {}
        self._child_rows: dict[str, tuple[Optional[str], ...]] = {}
        self._useful: dict[str, frozenset[str]] = {}
        self._reachable: Optional[frozenset[str]] = None
        self._check_references()
        #: Σ — every label mentioned in a content model or the root map.
        self.alphabet: frozenset[str] = self._compute_alphabet()
        #: Σ interned to dense ids (sorted, so ids are deterministic and
        #: compiled artifacts hash/pickle reproducibly).
        self.symbols: SymbolTable = SymbolTable(sorted(self.alphabet))

    def _check_references(self) -> None:
        for type_name, declaration in self.types.items():
            if isinstance(declaration, ComplexType):
                for label, child_type in declaration.child_types.items():
                    if child_type not in self.types:
                        raise SchemaError(
                            f"type {type_name!r} assigns unknown type "
                            f"{child_type!r} to label {label!r}"
                        )
                for attr in declaration.attributes.values():
                    attr_type = self.types.get(attr.type_name)
                    if attr_type is None:
                        raise SchemaError(
                            f"type {type_name!r}: attribute {attr.name!r} "
                            f"references unknown type {attr.type_name!r}"
                        )
                    if not isinstance(attr_type, SimpleType):
                        raise SchemaError(
                            f"type {type_name!r}: attribute {attr.name!r} "
                            "must have a simple type"
                        )
        for label, type_name in self.roots.items():
            if type_name not in self.types:
                raise SchemaError(
                    f"root label {label!r} references unknown type "
                    f"{type_name!r}"
                )

    def _compute_alphabet(self) -> frozenset[str]:
        labels: set[str] = set(self.roots)
        for declaration in self.types.values():
            if isinstance(declaration, ComplexType):
                labels |= declaration.content.symbols()
        return frozenset(labels)

    # -- lookups ------------------------------------------------------------

    def type(self, name: str) -> TypeDef:
        try:
            return self.types[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no type {name!r}"
            ) from None

    def root_type(self, label: str) -> Optional[str]:
        """``R(label)`` — the type name for a root label, or None."""
        return self.roots.get(label)

    def child_type(self, type_name: str, label: str) -> Optional[str]:
        """``types_τ(label)`` — None when undefined."""
        declaration = self.type(type_name)
        if isinstance(declaration, ComplexType):
            return declaration.child_types.get(label)
        return None

    def type_names(self) -> list[str]:
        return list(self.types)

    # -- compiled artifacts ---------------------------------------------------

    def content_dfa(self, type_name: str) -> DFA:
        """The content model of a complex type as a complete, minimized
        DFA over the schema alphabet (cached)."""
        if type_name not in self._dfas:
            declaration = self.type(type_name)
            if not isinstance(declaration, ComplexType):
                raise SchemaError(
                    f"type {type_name!r} is simple; it has no content DFA"
                )
            self._dfas[type_name] = compile_dfa(
                declaration.content, self.alphabet
            )
        return self._dfas[type_name]

    def compiled_content_dfa(self, type_name: str) -> CompiledDFA:
        """The content DFA of a complex type compiled to dense rows over
        this schema's :class:`SymbolTable` (cached).

        Content DFAs are complete over the schema alphabet, so the
        compiled rows contain no ``-1`` entries; runtime loops may index
        unconditionally once the label is interned.
        """
        if type_name not in self._compiled:
            self._compiled[type_name] = CompiledDFA.from_dfa(
                self.content_dfa(type_name), self.symbols
            )
        return self._compiled[type_name]

    def child_type_row(self, type_name: str) -> tuple[Optional[str], ...]:
        """``types_τ`` as a dense row over this schema's symbol table
        (cached): ``row[sym]`` is the child-type name for the label with
        id ``sym``, or ``None`` where ``types_τ`` is undefined.

        Companion to :meth:`compiled_content_dfa` for the interned fast
        path — once a child label is a dense id, both the content-model
        transition and the type assignment for the descent are tuple
        indexing, no string hashing.
        """
        row = self._child_rows.get(type_name)
        if row is None:
            declaration = self.type(type_name)
            if not isinstance(declaration, ComplexType):
                raise SchemaError(
                    f"type {type_name!r} is simple; it has no child types"
                )
            child_types = declaration.child_types
            row = tuple(
                child_types.get(label) for label in self.symbols.labels
            )
            self._child_rows[type_name] = row
        return row

    def reachable_types(self) -> frozenset[str]:
        """Type names reachable from the root map through child-type
        assignments (cached).

        Every type a validator can assign to a node lies in this set:
        type assignment starts at ``R`` and descends only through
        ``types_τ``.  Declarations outside it are dead weight — nothing
        needs their automata.
        """
        if self._reachable is None:
            seen: set[str] = set(self.roots.values())
            stack = list(seen)
            while stack:
                declaration = self.types[stack.pop()]
                if isinstance(declaration, ComplexType):
                    for child in declaration.child_types.values():
                        if child not in seen:
                            seen.add(child)
                            stack.append(child)
            self._reachable = frozenset(seen)
        return self._reachable

    def useful_symbols(self, type_name: str) -> frozenset[str]:
        """Labels that occur in at least one word of ``L(regexp_τ)`` —
        the semantic domain for the child-type condition of the
        subsumption fixpoint (cached).

        A symbol is useful iff some transition on it goes from a
        reachable state to a co-reachable state of the content DFA.
        """
        if type_name not in self._useful:
            dfa = self.content_dfa(type_name)
            reachable = dfa.reachable_states()
            coreachable = dfa.coreachable_states()
            useful: set[str] = set()
            declaration = self.type(type_name)
            assert isinstance(declaration, ComplexType)
            candidates = declaration.content.symbols()
            for state in reachable:
                for symbol in candidates - useful:
                    if dfa.transitions[state][symbol] in coreachable:
                        useful.add(symbol)
            self._useful[type_name] = frozenset(useful)
        return self._useful[type_name]

    def __repr__(self) -> str:
        label = self.name or "anonymous"
        return (
            f"Schema({label!r}, {len(self.types)} types, "
            f"{len(self.roots)} roots)"
        )


def complex_type(
    name: str,
    content: Union[str, Regex],
    child_types: Mapping[str, str],
    attributes: Optional[Mapping[str, AttributeDecl]] = None,
) -> ComplexType:
    """Declare a complex type; ``content`` may be DTD-syntax source."""
    expression = (
        parse_content_model(content) if isinstance(content, str) else content
    )
    return ComplexType(name, expression, child_types, attributes or {})


def attribute(name: str, type_name: str, *, required: bool = False) -> AttributeDecl:
    """Declare an attribute for use in :func:`complex_type`."""
    return AttributeDecl(name, type_name, required)


def schema(
    types: Mapping[str, TypeDef],
    roots: Mapping[str, str],
    *,
    name: str = "",
) -> Schema:
    """Convenience constructor mirroring :class:`Schema`."""
    return Schema(types, roots, name=name)
