"""Persistent compiled schema-pair artifacts.

Everything in a :class:`~repro.schema.registry.SchemaPair` — ``R_sub``,
``R_nondis``, the string-cast machines, the immediate decision automata
and their dense-table compilations — depends only on the two schemas,
never on a document.  The paper's static-preprocessing stance therefore
extends across *process restarts*: compile once, persist, and amortize
over every document a fleet of workers ever validates.

The cache is content-addressed.  :func:`schema_fingerprint` hashes a
canonical serialization of a schema's semantic content (declarations,
facets, content models, root map — *not* its display name), and a pair
artifact is keyed by the two fingerprints plus :data:`ARTIFACT_VERSION`.
Changing either schema, or bumping the version after a representation
change, misses the cache and rebuilds; a stale or corrupt file is
treated as a miss, never trusted.

Artifacts are pickles of the warmed pair.  Pickle is acceptable here
because the cache directory is an operator-controlled build product
(like a ``.pyc``), not untrusted input.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Optional

from repro.errors import ReproError
from repro.guards import resolve_limits
from repro.schema.model import ComplexType, Schema, SimpleType
from repro.schema.registry import SchemaPair

#: Bump whenever the pickled representation of SchemaPair (or anything
#: it transitively contains) changes shape; old artifacts then miss.
#: v2: ``_string_casts`` became a ``LazyPairTable`` (was a plain dict).
#: v3: compiled tables went flat (``array('i')`` + ``bytes`` flags) and
#: pairs carry the fused :class:`~repro.schema.pairkernel.PairKernel`.
#: v4: composed evolution-chain pairs (a ``chain`` attribute holding the
#: :class:`~repro.schema.chain.SchemaChain`, product target schemas with
#: :class:`~repro.schema.simple.IntersectionType` values) may be pickled.
ARTIFACT_VERSION = 4


class ArtifactError(ReproError):
    """A persisted artifact could not be loaded (missing, corrupt, or
    written by an incompatible version)."""

    code = "artifact-invalid"


# -- content fingerprints --------------------------------------------------------


def _facet_text(value) -> str:
    """Canonical text for a facet value (Fraction, date, int, None)."""
    return "" if value is None else str(value)


def _simple_fields(declaration: SimpleType) -> tuple:
    return (
        "simple",
        declaration.kind.value,
        _facet_text(declaration.min_inclusive),
        _facet_text(declaration.max_inclusive),
        _facet_text(declaration.min_exclusive),
        _facet_text(declaration.max_exclusive),
        _facet_text(declaration.min_length),
        _facet_text(declaration.max_length),
        ()
        if declaration.enumeration is None
        else tuple(sorted(declaration.enumeration)),
    )


def _complex_fields(declaration: ComplexType) -> tuple:
    return (
        "complex",
        declaration.content.to_source(),
        tuple(sorted(declaration.child_types.items())),
        tuple(
            (name, attr.type_name, attr.required)
            for name, attr in sorted(declaration.attributes.items())
        ),
    )


def schema_fingerprint(schema: Schema) -> str:
    """A hex digest of the schema's semantic content.

    Two schemas with the same declarations, root map and identity
    constraints hash equally regardless of display name or declaration
    order; any change to a content model, facet, attribute or root
    changes the digest.
    """
    entries = []
    for type_name in sorted(schema.types):
        declaration = schema.types[type_name]
        fields = (
            _simple_fields(declaration)
            if isinstance(declaration, SimpleType)
            else _complex_fields(declaration)
        )
        entries.append((type_name, fields))
    payload = repr(
        (
            tuple(entries),
            tuple(sorted(schema.roots.items())),
            tuple(
                (label, tuple(repr(c) for c in constraints))
                for label, constraints in sorted(schema.identity.items())
            ),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def pair_cache_key(source: Schema, target: Schema) -> str:
    """The content-addressed key of a (source, target) artifact."""
    digest = hashlib.sha256()
    digest.update(f"repro-pair-v{ARTIFACT_VERSION}\n".encode("ascii"))
    digest.update(schema_fingerprint(source).encode("ascii"))
    digest.update(b"\n")
    digest.update(schema_fingerprint(target).encode("ascii"))
    return digest.hexdigest()


def chain_cache_key(schemas) -> str:
    """The content-addressed key of a composed S₁→…→Sₙ chain artifact.

    Hashes *every* fingerprint in order — a chain through different
    intermediate schemas is a different composition even when its two
    endpoints agree, because the intermediates decide which checks the
    hop analysis keeps.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-chain-v{ARTIFACT_VERSION}\n".encode("ascii"))
    for schema in schemas:
        digest.update(schema_fingerprint(schema).encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def artifact_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"pair-{key[:32]}.pkl")


# -- persistence -----------------------------------------------------------------


def save(pair: SchemaPair, path: str, *, key: Optional[str] = None) -> int:
    """Persist a pair artifact; returns the file size in bytes.

    ``key`` defaults to the two-schema :func:`pair_cache_key`; composed
    chain pairs pass their :func:`chain_cache_key` instead, so a chain
    artifact can never satisfy a plain-pair lookup (or vice versa).

    The write goes through a temporary file and an atomic rename, so a
    crashed writer never leaves a half-written artifact for a
    concurrent reader (or a later :func:`get_or_build`) to trust.
    """
    payload = {
        "version": ARTIFACT_VERSION,
        "key": key or pair_cache_key(pair.source, pair.target),
        "pair": pair,
    }
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return len(blob)


def load(path: str, *, expected_key: Optional[str] = None) -> SchemaPair:
    """Load a persisted pair artifact.

    Raises :class:`ArtifactError` when the file is unreadable, was
    written by a different :data:`ARTIFACT_VERSION`, oversized for the
    ambient ``Limits.max_document_bytes`` budget, or (when
    ``expected_key`` is given) belongs to different schema content.
    """
    max_bytes = resolve_limits(None).max_document_bytes
    try:
        if max_bytes is not None and os.path.getsize(path) > max_bytes:
            # Size-check before buffering/unpickling: a truncation-
            # corrupted or runaway artifact is a cache miss, not an OOM.
            raise ArtifactError(
                f"artifact {path!r} is {os.path.getsize(path)} bytes, "
                f"exceeding the max_document_bytes limit of {max_bytes}"
            )
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise ArtifactError(f"no artifact at {path!r}") from None
    except ArtifactError:
        raise
    except Exception as error:
        raise ArtifactError(
            f"artifact {path!r} is unreadable: {error}"
        ) from error
    if not isinstance(payload, dict) or "pair" not in payload:
        raise ArtifactError(f"artifact {path!r} has an unexpected layout")
    if payload.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"artifact {path!r} was written by version "
            f"{payload.get('version')!r}, expected {ARTIFACT_VERSION}"
        )
    if expected_key is not None and payload.get("key") != expected_key:
        raise ArtifactError(
            f"artifact {path!r} belongs to different schema content"
        )
    pair = payload["pair"]
    if not isinstance(pair, SchemaPair):
        raise ArtifactError(f"artifact {path!r} does not hold a SchemaPair")
    return pair


def get_or_build(
    source: Schema,
    target: Schema,
    cache_dir: str,
    *,
    warm: bool = True,
) -> tuple[SchemaPair, bool]:
    """The pair for (source, target), from cache when possible.

    Returns ``(pair, from_cache)``.  A hit requires an artifact whose
    stored key matches the current content hash of both schemas; any
    mismatch (edited schema, corrupt file, version bump) silently
    rebuilds — and re-persists, healing the cache.
    """
    key = pair_cache_key(source, target)
    path = artifact_path(cache_dir, key)
    try:
        return load(path, expected_key=key), True
    except ArtifactError:
        pass
    pair = SchemaPair(source, target)
    if warm:
        pair.warm()
    save(pair, path)
    return pair, False


def get_or_build_chain(
    schemas,
    cache_dir: str,
    *,
    warm: bool = True,
) -> tuple[SchemaPair, bool]:
    """The composed pair for an S₁→…→Sₙ evolution chain, cached like
    :func:`get_or_build` but keyed by :func:`chain_cache_key` over every
    schema in order.  Returns ``(composed_pair, from_cache)``; the pair
    carries its :class:`~repro.schema.chain.SchemaChain` as ``.chain``
    (pickled along with it), so a cache hit restores the sequential
    fallback path too.
    """
    from repro.schema.chain import SchemaChain  # local: avoid cycle

    schemas = list(schemas)
    key = chain_cache_key(schemas)
    path = artifact_path(cache_dir, key)
    try:
        pair = load(path, expected_key=key)
        if getattr(pair, "chain", None) is not None:
            return pair, True
    except ArtifactError:
        pass
    chain = SchemaChain(schemas)
    pair = chain.composed_pair()
    if warm:
        chain.warm()
    save(pair, path, key=key)
    return pair, False
