"""Evolution-chain composition — one fused cast for S₁→S₂→…→Sₙ.

A document validated long ago against S₁ must be brought to Sₙ after the
schema drifted through n−1 revisions.  The per-pair machinery casts one
hop at a time — n−1 full passes over the document.  This module composes
the chain at *compile time* into one direct :class:`SchemaPair` so the
runtime pays a single pass:

* **Hop analysis** (the commutation precomputation).  A hop whose source
  schema is root-subsumed by its target (``R_sub`` holds on every root
  pair) is *vacuous*: any document valid under Sᵢ is valid under Sᵢ₊₁,
  so Sᵢ₊₁ never needs checking.  Conversely a later, stricter schema
  *absorbs* an earlier one (every Sq-valid document is Sp-valid), so the
  earlier check can be reordered away.  Monotone drift chains collapse
  to a single residual target this way; if *every* hop is vacuous the
  chain is statically safe and casting is O(1) — no parse, no traversal.

* **Product composition.**  The residual check schemas that survive the
  analysis are folded into one product schema M whose tuple types accept
  exactly ``valid(τ_a) ∩ valid(τ_b) ∩ …`` — content models by DFA
  intersection, simple types by :func:`~repro.schema.simple.intersect_simple`,
  attributes by declaration merge.  ``SchemaPair(S₁, M)`` then drives the
  ordinary fused kernel (:mod:`repro.core.castkernel`) unchanged, with
  byte-skip intact.

* **Relation join.**  The composed pair's ``R_sub``/``R_nondis`` are not
  recomputed by fixpoint; they are *joined* from the per-hop relations
  (subsumed∘subsumed → subsumed, nondisjoint∘nondisjoint as the
  disjointness absorption) — a sound seed under the premise below.

Soundness contract (the paper's revalidation premise: the document is
valid under S₁): an **accept** from the composed pair implies validity
under every hop target.  A **reject** is *not* trusted — the composed
machine conflates hops, so its error position cannot match the
sequential pipeline's.  :meth:`SchemaChain.cast_text` therefore re-runs
the sequential per-hop pipeline on rejection and returns *its* report,
giving verdict and error-position identity with ``cast(Pₙ₋₁) ∘ … ∘
cast(P₁)`` by construction while keeping the accepting hot path at one
pass.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.automata.dfa import harmonize
from repro.errors import ChainMismatchError
from repro.remodel.toregex import dfa_to_regex
from repro.schema.model import (
    AttributeDecl,
    ComplexType,
    Schema,
    is_complex,
    is_simple,
)
from repro.schema.registry import SchemaPair
from repro.schema.simple import BOTTOM, SimpleType, intersect_simple

#: Joins the member type names of a product-schema tuple type.  Chosen
#: to be implausible in user type names so tuple names cannot collide.
TYPE_SEP = "∧"

Relation = frozenset[tuple[str, str]]


def _compose_relation(first: Relation, second: Relation) -> Relation:
    """Relational join: ``{(a, c) | (a, b) ∈ first, (b, c) ∈ second}``.

    Composing subsumption with subsumption yields subsumption
    (transitivity through the junction schema); composing nondisjointness
    is the seed for the composed pair's disjointness absorption.
    """
    by_mid: dict[str, list[str]] = {}
    for mid, right in second:
        by_mid.setdefault(mid, []).append(right)
    joined: set[tuple[str, str]] = set()
    for left, mid in first:
        for right in by_mid.get(mid, ()):
            joined.add((left, right))
    return frozenset(joined)


def _root_subsumed(pair: SchemaPair) -> bool:
    """Is every source-valid document valid under the target?

    True when every root label of the source is a root of the target and
    the root type pair is subsumed — the hop-level lift of ``R_sub``.
    """
    if not pair.source.roots:
        return False
    for label, source_type in pair.source.roots.items():
        target_type = pair.target.root_type(label)
        if target_type is None:
            return False
        if not pair.is_subsumed(source_type, target_type):
            return False
    return True


class SchemaChain:
    """An evolution history S₁→S₂→…→Sₙ with its composed cast machine.

    Construction collapses consecutive identical schemas (identity hops),
    runs the hop analysis eagerly (it is cheap relative to pair
    compilation, which is itself amortized across documents), and builds
    hop pairs and the composed pair lazily on first use.
    """

    def __init__(self, schemas: Sequence[Schema], *, name: str = ""):
        if not schemas:
            raise ChainMismatchError("an evolution chain needs schemas")
        from repro.schema.artifacts import schema_fingerprint

        collapsed: list[Schema] = []
        fingerprints: list[str] = []
        for schema in schemas:
            fingerprint = schema_fingerprint(schema)
            if fingerprints and fingerprints[-1] == fingerprint:
                continue  # identity hop — a no-op by definition
            collapsed.append(schema)
            fingerprints.append(fingerprint)
        if len(collapsed) == 1:
            # Fully-identity chain: keep one (vacuous) hop so the chain
            # still exposes a well-formed pair.
            collapsed.append(collapsed[0])
            fingerprints.append(fingerprints[0])
        self.schemas: tuple[Schema, ...] = tuple(collapsed)
        self.fingerprints: tuple[str, ...] = tuple(fingerprints)
        self.name = name or "→".join(
            s.name or f"S{i + 1}" for i, s in enumerate(self.schemas)
        )
        self._hops: Optional[tuple[SchemaPair, ...]] = None
        self._reverse_pairs: dict[tuple[int, int], SchemaPair] = {}
        self._composed: Optional[SchemaPair] = None
        self._analysis: Optional[dict] = None

    def __len__(self) -> int:
        return len(self.schemas)

    @property
    def hop_count(self) -> int:
        return len(self.schemas) - 1

    @property
    def hops(self) -> tuple[SchemaPair, ...]:
        """The n−1 per-hop pairs — the sequential baseline and the
        relation source for the composition join."""
        if self._hops is None:
            self._hops = tuple(
                SchemaPair(self.schemas[i], self.schemas[i + 1])
                for i in range(self.hop_count)
            )
        return self._hops

    # -- hop analysis (commutation precomputation) -------------------------

    def analysis(self) -> dict:
        """Which hops are vacuous, which checks are absorbed, and what
        remains to verify.

        Returns a dict with:

        * ``vacuous`` — per-hop booleans: hop i never rejects a
          premise-valid document (source root-subsumed by target), so
          its target schema needs no check;
        * ``absorbed`` — schema indices whose check is covered by a
          later, stricter surviving check (the reorder/merge);
        * ``checked`` — the residual schema indices the composed pair
          actually verifies (empty ⇒ statically safe).
        """
        if self._analysis is not None:
            return self._analysis
        vacuous = tuple(_root_subsumed(hop) for hop in self.hops)
        # S_{i+1} needs no check when hop i is vacuous: by induction
        # every earlier schema is either the premise (S₁) or verified on
        # accept, and vacuity transports validity across the hop.
        candidates = [
            i + 1 for i in range(self.hop_count) if not vacuous[i]
        ]
        checked: list[int] = []
        absorbed: list[int] = []
        absorber: Optional[int] = None
        for index in reversed(candidates):
            if absorber is not None and _root_subsumed(
                self._reverse_pair(absorber, index)
            ):
                # Every S_absorber-valid document is S_index-valid, and
                # S_absorber is checked — S_index commutes away.
                absorbed.append(index)
                continue
            checked.append(index)
            absorber = index
        checked.reverse()
        absorbed.reverse()
        self._analysis = {
            "vacuous": vacuous,
            "absorbed": tuple(absorbed),
            "checked": tuple(checked),
        }
        return self._analysis

    def _reverse_pair(self, source_index: int, target_index: int) -> SchemaPair:
        key = (source_index, target_index)
        pair = self._reverse_pairs.get(key)
        if pair is None:
            pair = SchemaPair(
                self.schemas[source_index], self.schemas[target_index]
            )
            self._reverse_pairs[key] = pair
        return pair

    @property
    def statically_safe(self) -> bool:
        """Every hop is vacuous: any document valid under S₁ is valid
        under every later schema.  Casting needs zero traversal."""
        return not self.analysis()["checked"]

    # -- composition --------------------------------------------------------

    def composed_pair(self) -> SchemaPair:
        """The single direct pair S₁→M covering every residual check.

        The returned object is an ordinary :class:`SchemaPair` (the
        fused kernel, artifacts, memo, batch and fleet layers treat it
        as such) with two extras: relations seeded by the hop join, and
        a ``chain`` attribute pointing back here so service/CLI layers
        can recover the sequential fallback.
        """
        if self._composed is not None:
            return self._composed
        checked = list(self.analysis()["checked"])
        if not checked:
            # Statically safe; keep a well-formed pair against the final
            # schema for callers that want one (plain /cast, batch).
            checked = [len(self.schemas) - 1]
        positions = [0] + checked
        sub_bridges = [
            self._bridge(positions[k], positions[k + 1], subsumption=True)
            for k in range(len(positions) - 1)
        ]
        nondis_bridges = [
            self._bridge(positions[k], positions[k + 1], subsumption=False)
            for k in range(len(positions) - 1)
        ]
        if len(checked) == 1:
            target = self.schemas[checked[0]]
            r_sub = sub_bridges[0]
            r_nondis = nondis_bridges[0]
        else:
            target, tuples = _product_schema(
                [self.schemas[i] for i in checked],
                name=TYPE_SEP.join(
                    self.schemas[i].name or f"S{i + 1}" for i in checked
                ),
            )
            r_sub = _seed_product_relation(tuples, sub_bridges)
            r_nondis = _seed_product_relation(tuples, nondis_bridges)
        composed = SchemaPair(
            self.schemas[0], target, r_sub=r_sub, r_nondis=r_nondis
        )
        composed.chain = self
        self._composed = composed
        return composed

    def _bridge(
        self, start: int, stop: int, *, subsumption: bool
    ) -> Relation:
        """The hop-relation join from schema ``start`` to ``stop``."""
        relation = (
            self.hops[start].r_sub if subsumption else self.hops[start].r_nondis
        )
        for i in range(start + 1, stop):
            step = self.hops[i].r_sub if subsumption else self.hops[i].r_nondis
            relation = _compose_relation(relation, step)
        return relation

    # -- casting ------------------------------------------------------------

    def cast_text(
        self,
        text,
        *,
        limits=None,
        stream_skip: bool = True,
        trusted: bool = False,
    ):
        """Cast a premise-valid document across the whole chain.

        Statically safe chains answer in O(1).  Otherwise the fused
        composed pair runs once; on accept that is the verdict, on
        reject the sequential per-hop pipeline re-runs and its report
        (verdict, reason, error position) is returned verbatim — exact
        parity with n−1 individual casts, by construction.
        """
        from repro.core.cast import cast_text
        from repro.core.result import ValidationReport

        if self.statically_safe:
            return ValidationReport.success()
        report = cast_text(
            self.composed_pair(),
            text,
            limits=limits,
            stream_skip=stream_skip,
            trusted=trusted,
        )
        if report.valid:
            return report
        return self.sequential_cast_text(
            text, limits=limits, stream_skip=stream_skip, trusted=trusted
        )

    def cast_composed_text(
        self,
        text,
        *,
        limits=None,
        stream_skip: bool = True,
        trusted: bool = False,
    ):
        """The raw fused pass only — no sequential fallback.  Accepts are
        authoritative; rejects carry composed (not per-hop) positions."""
        from repro.core.cast import cast_text

        return cast_text(
            self.composed_pair(),
            text,
            limits=limits,
            stream_skip=stream_skip,
            trusted=trusted,
        )

    def sequential_cast_text(
        self,
        text,
        *,
        limits=None,
        stream_skip: bool = True,
        trusted: bool = False,
    ):
        """The n−1-pass baseline: cast hop by hop, first failure wins."""
        from repro.core.cast import cast_text
        from repro.core.result import ValidationReport

        report = ValidationReport.success()
        for hop in self.hops:
            report = cast_text(
                hop,
                text,
                limits=limits,
                stream_skip=stream_skip,
                trusted=trusted,
            )
            if not report.valid:
                return report
        return report

    def warm(self, *, eager_pairs: bool = True) -> None:
        """Warm the composed pair (and build the hop pairs)."""
        self.composed_pair().warm(eager_pairs=eager_pairs)

    def __repr__(self) -> str:
        checked = self.analysis()["checked"]
        residual = "O(1)" if not checked else f"{len(checked)} check(s)"
        return (
            f"SchemaChain({self.name!r}, {self.hop_count} hops, {residual})"
        )


def compose_pairs(first: SchemaPair, second: SchemaPair) -> SchemaPair:
    """Compose two schema pairs into one direct pair.

    ``first.target`` and ``second.source`` must be the same schema (by
    content fingerprint) — the junction of the chain.  Composition
    flattens through :class:`SchemaChain`, so left- and right-associated
    3-hop compositions build the identical canonical chain, and an
    identity pair (source = target) collapses out entirely.
    """
    from repro.schema.artifacts import schema_fingerprint

    left = getattr(first, "chain", None)
    right = getattr(second, "chain", None)
    left_schemas = list(left.schemas) if left else [first.source, first.target]
    right_schemas = (
        list(right.schemas) if right else [second.source, second.target]
    )
    junction_out = schema_fingerprint(left_schemas[-1])
    junction_in = schema_fingerprint(right_schemas[0])
    if junction_out != junction_in:
        raise ChainMismatchError(
            "cannot compose pairs: the first pair's target schema "
            f"({left_schemas[-1].name or 'unnamed'}) differs from the "
            f"second pair's source ({right_schemas[0].name or 'unnamed'})"
        )
    chain = SchemaChain(left_schemas + right_schemas[1:])
    return chain.composed_pair()


# -- product schema construction --------------------------------------------


def _product_schema(
    schemas: Sequence[Schema], *, name: str
) -> tuple[Schema, dict[str, tuple[str, ...]]]:
    """The conjunction schema M of several check schemas.

    M's types are tuples of member types, reachable from the joint
    roots; an element is M-valid exactly when it is valid under every
    member schema (up to the conservative corners below, which only
    under-approximate — the chain's sequential fallback covers them).

    Corners: a tuple mixing complex and simple declarations, or whose
    content intersection is empty, gets the uninhabited ``BOTTOM`` type
    (rejects everything).  Under the hop nondisjointness premise such
    tuples are also seeded disjoint, so the kernel fast-fails them
    without ever scanning.
    """
    roots: dict[str, str] = {}
    root_tuples: list[tuple[str, ...]] = []
    shared_root_labels = set(schemas[0].roots)
    for schema in schemas[1:]:
        shared_root_labels &= set(schema.roots)
    for label in sorted(shared_root_labels):
        member_types = tuple(schema.roots[label] for schema in schemas)
        roots[label] = TYPE_SEP.join(member_types)
        root_tuples.append(member_types)

    types: dict[str, SimpleType | ComplexType] = {}
    tuples: dict[str, tuple[str, ...]] = {}
    pending = list(root_tuples)
    while pending:
        member_types = pending.pop()
        type_name = TYPE_SEP.join(member_types)
        if type_name in types:
            continue
        declaration, children = _product_type(
            type_name, member_types, schemas, types
        )
        types[type_name] = declaration
        tuples[type_name] = member_types
        pending.extend(children)
    return Schema(types, roots, name=name), tuples


def _product_type(
    type_name: str,
    member_types: Sequence[str],
    schemas: Sequence[Schema],
    registry: dict,
) -> tuple[SimpleType | ComplexType, list[tuple[str, ...]]]:
    """Declare one tuple type; returns it plus child tuples to visit."""
    declarations = [
        schema.types[member]
        for schema, member in zip(schemas, member_types)
    ]
    if all(is_simple(d) for d in declarations):
        merged = declarations[0]
        for other in declarations[1:]:
            merged = intersect_simple(merged, other, name=type_name)
        return _with_name(merged, type_name), []
    if not all(is_complex(d) for d in declarations):
        # Complex ∧ simple: only childless, near-empty-text elements
        # could satisfy both; approximate as uninhabited (sound — the
        # fallback pipeline owns the verdict for documents that get
        # here, and hop nondisjointness seeds these tuples disjoint).
        return _with_name(BOTTOM, type_name), []
    content = schemas[0].content_dfa(member_types[0])
    for schema, member in zip(schemas[1:], member_types[1:]):
        left, right = harmonize(content, schema.content_dfa(member))
        content = left.intersection(right)
    content = content.minimize()
    regex = dfa_to_regex(content)
    if regex is None:
        # Empty content intersection: no child word satisfies every
        # member — the tuple is uninhabited.
        return _with_name(BOTTOM, type_name), []
    child_types: dict[str, str] = {}
    children: list[tuple[str, ...]] = []
    for label in sorted(regex.symbols()):
        child_tuple = tuple(
            d.child_types[label] for d in declarations
        )
        child_types[label] = TYPE_SEP.join(child_tuple)
        children.append(child_tuple)
    attributes = _product_attributes(
        type_name, declarations, schemas, registry
    )
    return (
        ComplexType(type_name, regex, child_types, attributes),
        children,
    )


def _product_attributes(
    type_name: str,
    declarations: Sequence[ComplexType],
    schemas: Sequence[Schema],
    registry: dict,
) -> dict[str, AttributeDecl]:
    """Merge attribute declarations across the tuple members.

    * declared by every member → declared, value type intersected,
      required if any member requires it;
    * required by some member, undeclared by another → the element can
      never carry a valid combination: declare it required with the
      uninhabited value type (absent fails the requirer, present fails
      the non-declarer);
    * optional by some members, undeclared by others → omitted: absence
      satisfies everyone, presence must be rejected (the non-declaring
      member treats it as undeclared), which omission does.
    """
    merged: dict[str, AttributeDecl] = {}
    names: set[str] = set()
    for declaration in declarations:
        names |= set(declaration.attributes)
    for attr_name in sorted(names):
        decls = [d.attributes.get(attr_name) for d in declarations]
        if all(decls):
            value = schemas[0].types[decls[0].type_name]
            for schema, decl in zip(schemas[1:], decls[1:]):
                value = intersect_simple(
                    value,
                    schema.types[decl.type_name],
                    name=f"{type_name}@{attr_name}",
                )
            value_name = _register_value_type(
                registry, f"{type_name}@{attr_name}", value
            )
            merged[attr_name] = AttributeDecl(
                attr_name,
                value_name,
                required=any(d.required for d in decls),
            )
        elif any(d is not None and d.required for d in decls):
            value_name = _register_value_type(
                registry, f"{type_name}@{attr_name}", BOTTOM
            )
            merged[attr_name] = AttributeDecl(
                attr_name, value_name, required=True
            )
        # else: optional-in-some, undeclared-in-others — omit.
    return merged


def _register_value_type(registry: dict, name: str, value) -> str:
    registry[name] = _with_name(value, name)
    return name


def _with_name(declaration: SimpleType, name: str) -> SimpleType:
    if declaration.name == name:
        return declaration
    from repro.schema.simple import _renamed

    return _renamed(declaration, name)


def _seed_product_relation(
    tuples: dict[str, tuple[str, ...]], bridges: Sequence[Relation]
) -> Relation:
    """Relations of (S₁ type, tuple type) joined through the bridges.

    ``bridges[0]`` relates S₁ types to the first checked position;
    ``bridges[k]`` relates consecutive checked positions.  A pair enters
    the seed when the whole chain of bridge memberships holds — for
    subsumption that is transitivity (sound under-approximation: a
    missing pair only forgoes a skip); for nondisjointness it is the
    absorption seed (approximate either way: a wrong fast-fail is caught
    by the sequential fallback, a missed one only forgoes a shortcut).
    """
    seeded: set[tuple[str, str]] = set()
    first_bridge: dict[str, set[str]] = {}
    for left, right in bridges[0]:
        first_bridge.setdefault(right, set()).add(left)
    later = [frozenset(bridge) for bridge in bridges[1:]]
    for tuple_name, member_types in tuples.items():
        if any(
            (member_types[k], member_types[k + 1]) not in later[k]
            for k in range(len(later))
        ):
            continue
        for source_type in first_bridge.get(member_types[0], ()):
            seeded.add((source_type, tuple_name))
    return frozenset(seeded)
