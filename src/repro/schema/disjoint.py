"""Disjointness via the ``R_nondis`` least fixpoint (Definition 5 /
Theorem 2).

Two types are disjoint when no tree is valid under both — the
information that lets the tree cast validator fail immediately.  The
paper computes the *complement*: ``R_nondis`` starts from non-disjoint
simple pairs (here: simple types whose accepted lexical spaces overlap,
the facet bootstrap) and grows complex pairs ``(τ, τ')`` whenever

    ``L(regexp_τ) ∩ L(regexp_τ') ∩ P* ≠ ∅``,

where ``P`` is the set of labels whose assigned child-type pair is
already known non-disjoint.  The emptiness test is a product-automaton
reachability restricted to ``P`` (:meth:`DFA.intersects`).

In the paper's formal model simple/complex pairs are always disjoint: a
simple-type tree has exactly one χ leaf child while complex-type trees
have element children or none (Definition 1).  Real XML cannot
distinguish ``<e></e>`` from ``<e/>``, however, so this implementation
deviates deliberately: a simple type that accepts the empty string and a
complex type with a nullable content model share the empty element and
are therefore reported *non*-disjoint.  (A wrong disjointness claim
would make the cast validator reject valid documents; the paper's tree
model sidesteps this because its χ nodes survive serialization, ours do
not.)
"""

from __future__ import annotations

from repro.automata.dfa import harmonize
from repro.schema.model import ComplexType, Schema, SimpleType


def _attributes_compatible(
    source: Schema,
    src_decl: ComplexType,
    target: Schema,
    tgt_decl: ComplexType,
) -> bool:
    """Can any attribute assignment satisfy both types?

    A required attribute on either side must be declared on the other
    with an overlapping value space; purely optional attributes never
    prevent overlap (simply omit them).
    """
    for first, first_schema, second, second_schema in (
        (src_decl, source, tgt_decl, target),
        (tgt_decl, target, src_decl, source),
    ):
        for name, attr in first.attributes.items():
            if not attr.required:
                continue
            counterpart = second.attributes.get(name)
            if counterpart is None:
                return False
            mine = first_schema.type(attr.type_name)
            theirs = second_schema.type(counterpart.type_name)
            assert isinstance(mine, SimpleType)
            assert isinstance(theirs, SimpleType)
            if mine.is_disjoint_from(theirs):
                return False
    return True


def compute_nondisjoint(source: Schema, target: Schema) -> frozenset[tuple[str, str]]:
    """All pairs ``(τ, τ')`` with ``valid(τ) ∩ valid(τ') ≠ ∅``."""
    nondisjoint: set[tuple[str, str]] = set()
    complex_pairs: list[tuple[str, str]] = []
    dfa_pairs: dict[tuple[str, str], tuple] = {}
    for tau, src_decl in source.types.items():
        for tau_p, tgt_decl in target.types.items():
            if isinstance(src_decl, SimpleType) and isinstance(
                tgt_decl, SimpleType
            ):
                if not src_decl.is_disjoint_from(tgt_decl):
                    nondisjoint.add((tau, tau_p))
            elif isinstance(src_decl, ComplexType) and isinstance(
                tgt_decl, ComplexType
            ):
                if _attributes_compatible(source, src_decl, target,
                                          tgt_decl):
                    complex_pairs.append((tau, tau_p))
            elif _shares_empty_element(src_decl, tgt_decl):
                nondisjoint.add((tau, tau_p))

    changed = True
    while changed:
        changed = False
        for pair in complex_pairs:
            if pair in nondisjoint:
                continue
            tau, tau_p = pair
            src_decl = source.types[tau]
            tgt_decl = target.types[tau_p]
            assert isinstance(src_decl, ComplexType)
            assert isinstance(tgt_decl, ComplexType)
            allowed = frozenset(
                label
                for label, child in src_decl.child_types.items()
                if label in tgt_decl.child_types
                and (child, tgt_decl.child_types[label]) in nondisjoint
            )
            if pair not in dfa_pairs:
                dfa_pairs[pair] = harmonize(
                    source.content_dfa(tau), target.content_dfa(tau_p)
                )
            a, b = dfa_pairs[pair]
            if a.intersects(b, restrict_to=allowed):
                nondisjoint.add(pair)
                changed = True
    return frozenset(nondisjoint)


def _shares_empty_element(left, right) -> bool:
    """Does a simple/complex pair share the empty element ``<e/>``?

    True when the simple side accepts the empty string and the complex
    side's content model is nullable — the one tree the two kinds have
    in common once χ boundaries are erased by serialization.
    """
    if isinstance(left, SimpleType) and isinstance(right, ComplexType):
        simple, complex_ = left, right
    elif isinstance(left, ComplexType) and isinstance(right, SimpleType):
        simple, complex_ = right, left
    else:  # pragma: no cover - callers guarantee mixed kinds
        return False
    return (
        simple.validate("")
        and complex_.content.nullable()
        # Simple-typed elements admit no attributes, so a required
        # attribute on the complex side forecloses the shared element.
        and not complex_.required_attributes()
    )


def compute_disjoint(source: Schema, target: Schema) -> frozenset[tuple[str, str]]:
    """The disjoint relation ``R_dis`` — the complement of ``R_nondis``
    over ``T × T'`` (Theorem 2)."""
    nondisjoint = compute_nondisjoint(source, target)
    return frozenset(
        (tau, tau_p)
        for tau in source.types
        for tau_p in target.types
        if (tau, tau_p) not in nondisjoint
    )
