"""Productivity analysis and pruning (Section 3 of the paper).

A type τ is *productive* when ``valid(τ) ≠ ∅``.  The paper's marking
procedure is implemented verbatim:

1. every simple type is productive;
2. a complex type is productive when its content language intersected
   with ``ProdLabels_τ*`` (words using only labels whose assigned child
   type is already marked productive) is non-empty;
3. iterate to the least fixpoint.

:func:`prune_nonproductive` then applies the paper's "straightforward
algorithm" for normalizing a schema: each surviving content model is
replaced by one for ``L(regexp_τ) ∩ ProdLabels_τ*``, non-productive
types are dropped, and root entries pointing at non-productive types are
removed.  The algorithms that follow (subsumption, disjointness) assume
a schema of productive types, exactly as the paper does.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.remodel.ast import EPSILON
from repro.remodel.toregex import dfa_to_regex, restrict_language
from repro.schema.model import ComplexType, Schema, SimpleType


def _accepts_within(schema: Schema, type_name: str, allowed: frozenset[str]) -> bool:
    """Is ``L(regexp_τ) ∩ allowed*`` non-empty?  BFS over the content
    DFA using only allowed symbols."""
    dfa = schema.content_dfa(type_name)
    if dfa.start in dfa.finals:
        return True
    seen = {dfa.start}
    frontier = [dfa.start]
    while frontier:
        state = frontier.pop()
        row = dfa.transitions[state]
        for symbol in allowed:
            dst = row[symbol]
            if dst in seen:
                continue
            if dst in dfa.finals:
                return True
            seen.add(dst)
            frontier.append(dst)
    return False


def productive_types(schema: Schema) -> frozenset[str]:
    """The set of productive type names (least fixpoint)."""
    productive: set[str] = {
        name
        for name, declaration in schema.types.items()
        # A simple type is productive unless its faceted value space is
        # empty (the paper's merged simple type is always inhabited;
        # faceted ones may not be).
        if isinstance(declaration, SimpleType) and not declaration.is_empty()
    }
    changed = True
    while changed:
        changed = False
        for name, declaration in schema.types.items():
            if name in productive or not isinstance(declaration, ComplexType):
                continue
            allowed = frozenset(
                label
                for label, child in declaration.child_types.items()
                if child in productive
            )
            if _accepts_within(schema, name, allowed):
                productive.add(name)
                changed = True
    return frozenset(productive)


def is_fully_productive(schema: Schema) -> bool:
    """Does every declared type accept at least one tree?"""
    return productive_types(schema) == frozenset(schema.types)


def prune_nonproductive(schema: Schema) -> Schema:
    """Rewrite ``schema`` so that every type is productive.

    Raises :class:`SchemaError` if no root survives (the schema as a
    whole accepts no document).
    """
    productive = productive_types(schema)
    if productive == frozenset(schema.types):
        return schema
    new_types: dict[str, object] = {}
    for name in productive:
        declaration = schema.types[name]
        if isinstance(declaration, SimpleType):
            new_types[name] = declaration
            continue
        assert isinstance(declaration, ComplexType)
        allowed = frozenset(
            label
            for label, child in declaration.child_types.items()
            if child in productive
        )
        if allowed == declaration.content.symbols():
            new_types[name] = declaration
            continue
        restricted = restrict_language(schema.content_dfa(name), allowed)
        expression = dfa_to_regex(restricted)
        if expression is None:
            # Productivity guaranteed a non-empty restricted language.
            raise AssertionError(
                f"productive type {name!r} restricted to an empty language"
            )
        child_types = {
            label: child
            for label, child in declaration.child_types.items()
            if label in expression.symbols()
        }
        new_types[name] = ComplexType(name, expression, child_types)
    new_roots = {
        label: type_name
        for label, type_name in schema.roots.items()
        if type_name in productive
    }
    if schema.roots and not new_roots:
        raise SchemaError(
            f"schema {schema.name!r} accepts no document: every root type "
            "is non-productive"
        )
    return Schema(new_types, new_roots, name=schema.name,
                  identity=schema.identity)
