"""Simple (atomic) types with restriction facets.

The paper merges all simple types into one ``simple`` type "for
exposition" and notes that handling the real XML Schema atomic types,
facet restrictions and their relationships "is a straightforward
extension" used to *bootstrap* the subsumption and disjointness
relations.  This module is that extension — it is what makes the paper's
**Experiment 2** (changing ``maxExclusive`` on ``quantity`` from 200 to
100) expressible:

* :class:`SimpleType` — an atomic kind plus facets (bounds, enumeration,
  length), with lexical validation of text values;
* :meth:`SimpleType.is_subsumed_by` — every text valid under ``self`` is
  valid under ``other`` (bootstraps ``R_sub``);
* :meth:`SimpleType.is_disjoint_from` — no text is valid under both
  (bootstraps ``R_nondis``'s complement).

Subsumption/disjointness here are *lexical*: they compare the sets of
accepted text strings, which is the semantics revalidation needs.  Both
are exact for same-kind comparisons over the implemented facets and
conservative (never unsound) across kinds.
"""

from __future__ import annotations

import datetime
import math
import re
from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction
from typing import Optional

from repro.errors import SchemaError


class AtomicKind(Enum):
    """Primitive value spaces supported by the reproduction."""

    STRING = "string"
    BOOLEAN = "boolean"
    DECIMAL = "decimal"
    INTEGER = "integer"
    DATE = "date"


_INTEGER_RE = re.compile(r"[+-]?[0-9]+\Z")
_DECIMAL_RE = re.compile(r"[+-]?(?:[0-9]+(?:\.[0-9]*)?|\.[0-9]+)\Z")
_DATE_RE = re.compile(r"(-?[0-9]{4,})-([0-9]{2})-([0-9]{2})\Z")
_BOOLEAN_LEXICALS = frozenset(("true", "false", "1", "0"))

#: Kinds whose lexical space is totally ordered and facet-boundable.
_ORDERED_KINDS = frozenset(
    (AtomicKind.DECIMAL, AtomicKind.INTEGER, AtomicKind.DATE)
)


@dataclass(frozen=True)
class SimpleType:
    """An atomic type with optional restriction facets.

    Bounds apply to ordered kinds only; length facets to strings;
    enumerations to any kind (members stored in lexical form).
    """

    name: str
    kind: AtomicKind
    min_inclusive: Optional[Fraction | datetime.date] = None
    max_inclusive: Optional[Fraction | datetime.date] = None
    min_exclusive: Optional[Fraction | datetime.date] = None
    max_exclusive: Optional[Fraction | datetime.date] = None
    min_length: Optional[int] = None
    max_length: Optional[int] = None
    enumeration: Optional[frozenset[str]] = None

    def __post_init__(self) -> None:
        has_bounds = any(
            facet is not None
            for facet in (
                self.min_inclusive,
                self.max_inclusive,
                self.min_exclusive,
                self.max_exclusive,
            )
        )
        if has_bounds and self.kind not in _ORDERED_KINDS:
            raise SchemaError(
                f"type {self.name!r}: bound facets need an ordered kind, "
                f"not {self.kind.value}"
            )
        if (
            self.min_length is not None or self.max_length is not None
        ) and self.kind is not AtomicKind.STRING:
            raise SchemaError(
                f"type {self.name!r}: length facets apply to strings only"
            )

    # -- value parsing and validation -------------------------------------

    def parse_value(self, text: str):
        """The typed value of ``text``, or None if lexically invalid.

        Whitespace is collapsed (stripped) for non-string kinds, per the
        XSD ``collapse`` whitespace facet on the numeric/date types.
        """
        if self.kind is AtomicKind.STRING:
            return text
        lexical = text.strip()
        if self.kind is AtomicKind.BOOLEAN:
            return lexical if lexical in _BOOLEAN_LEXICALS else None
        if self.kind is AtomicKind.INTEGER:
            if not _INTEGER_RE.match(lexical):
                return None
            return Fraction(int(lexical))
        if self.kind is AtomicKind.DECIMAL:
            if not _DECIMAL_RE.match(lexical):
                return None
            return Fraction(lexical if lexical[-1] != "." else lexical[:-1])
        if self.kind is AtomicKind.DATE:
            match = _DATE_RE.match(lexical)
            if not match:
                return None
            year, month, day = (int(part) for part in match.groups())
            try:
                return datetime.date(year, month, day)
            except ValueError:
                return None
        raise AssertionError(f"unhandled kind {self.kind}")

    def validate(self, text: str) -> bool:
        """Does ``text`` conform to this type (lexical form + facets)?"""
        value = self.parse_value(text)
        if value is None:
            return False
        interval = self.interval()
        if interval is not None and not interval.contains(value):
            return False
        if self.kind is AtomicKind.STRING:
            if self.min_length is not None and len(text) < self.min_length:
                return False
            if self.max_length is not None and len(text) > self.max_length:
                return False
        if self.enumeration is not None:
            lexical = text if self.kind is AtomicKind.STRING else text.strip()
            return lexical in self.enumeration
        return True

    # -- facet algebra ------------------------------------------------------

    def interval(self) -> Optional["Interval"]:
        """The bound facets as an interval, for ordered kinds."""
        if self.kind not in _ORDERED_KINDS:
            return None
        # A type may carry both an inclusive and an exclusive bound on
        # the same side (via chained restrictions); the tighter one wins.
        lower, lower_open = _max_bound(
            (self.min_inclusive, False), (self.min_exclusive, True)
        )
        upper, upper_open = _min_bound(
            (self.max_inclusive, False), (self.max_exclusive, True)
        )
        return Interval(
            lower=lower,
            lower_open=lower_open,
            upper=upper,
            upper_open=upper_open,
            integral=self.kind is AtomicKind.INTEGER,
        )

    def is_empty(self) -> bool:
        """Is the accepted lexical space empty?

        The paper's merged ``simple`` type is always inhabited, but a
        faceted type may not be (``positiveInteger`` with
        ``maxExclusive=1``); such a type is *non-productive* — no valid
        tree uses it — which the productivity analysis must know.
        """
        if self.enumeration is not None:
            return not any(self.validate(m) for m in self.enumeration)
        if self.kind is AtomicKind.STRING:
            return (
                self.max_length is not None
                and (self.min_length or 0) > self.max_length
            )
        interval = self.interval()
        if interval is None:
            return False
        lower, upper = interval.lower, interval.upper
        if lower is None or upper is None:
            return False
        if self.kind is AtomicKind.INTEGER:
            return not _contains_integer(
                lower, interval.lower_open, upper, interval.upper_open
            )
        if lower < upper:
            return False
        return lower > upper or interval.lower_open or interval.upper_open

    def is_subsumed_by(self, other: "SimpleType") -> bool:
        """Is every accepted text of ``self`` accepted by ``other``?

        Exact for same-kind pairs; across kinds it follows the lexical
        hierarchy (integer ⊆ decimal ⊆ string, boolean/date ⊆ string)
        and is otherwise conservatively False.
        """
        if isinstance(other, IntersectionType):
            # self ⊆ ∩members  ⟺  self ⊆ every member.
            return all(self.is_subsumed_by(m) for m in other.members)
        if self.enumeration is not None:
            # Finite lexical space: check member by member (exact).
            return all(other.validate(member) for member in self.enumeration)
        if other.enumeration is not None:
            return False  # self is infinite (no enum), other finite.
        if self.kind == other.kind:
            mine, theirs = self.interval(), other.interval()
            if mine is not None and theirs is not None:
                if not theirs.contains_interval(mine):
                    return False
            if self.kind is AtomicKind.STRING:
                return _length_implies(self, other)
            return True
        if other.kind is AtomicKind.STRING:
            # Any lexical form is a string; only unfaceted string targets
            # are a safe superset.
            return (
                other.min_length in (None, 0)
                and other.max_length is None
            )
        if (
            self.kind is AtomicKind.INTEGER
            and other.kind is AtomicKind.DECIMAL
        ):
            mine, theirs = self.interval(), other.interval()
            assert mine is not None and theirs is not None
            return theirs.contains_interval(mine)
        return False

    def is_disjoint_from(self, other: "SimpleType") -> bool:
        """Is no text accepted by both?  Sound (never claims disjointness
        wrongly); exact for ordered same-kind pairs and enumerations."""
        if isinstance(other, IntersectionType):
            # Disjoint from ∩members whenever disjoint from any member.
            return any(self.is_disjoint_from(m) for m in other.members)
        if self.enumeration is not None:
            return not any(other.validate(m) for m in self.enumeration)
        if other.enumeration is not None:
            return not any(self.validate(m) for m in other.enumeration)
        kinds = {self.kind, other.kind}
        if self.kind == other.kind:
            mine, theirs = self.interval(), other.interval()
            if mine is not None and theirs is not None:
                return not mine.intersects(theirs)
            if self.kind is AtomicKind.STRING:
                return _length_disjoint(self, other)
            return False
        if AtomicKind.STRING in kinds:
            # Strings overlap every other lexical space (up to length
            # facets, which we treat conservatively).
            return False
        if kinds == {AtomicKind.INTEGER, AtomicKind.DECIMAL}:
            mine, theirs = self.interval(), other.interval()
            assert mine is not None and theirs is not None
            return not mine.intersects(
                theirs, integral=True
            )
        if kinds == {AtomicKind.BOOLEAN, AtomicKind.INTEGER} or kinds == {
            AtomicKind.BOOLEAN,
            AtomicKind.DECIMAL,
        }:
            # "0" and "1" are lexically valid for both; check whether the
            # numeric side admits 0 or 1.
            numeric = self if self.kind is not AtomicKind.BOOLEAN else other
            interval = numeric.interval()
            assert interval is not None
            return not (
                interval.contains(Fraction(0)) or interval.contains(Fraction(1))
            )
        # date vs numeric/boolean: lexical spaces never overlap.
        return True

    def __repr__(self) -> str:
        return f"SimpleType({self.name!r}, {self.kind.value})"


@dataclass(frozen=True)
class IntersectionType(SimpleType):
    """The conjunction of several simple types — accepts exactly the
    texts every member accepts.

    Chain composition (:mod:`repro.schema.chain`) needs the value space
    ``valid(τ₂) ∩ valid(τ₃) ∩ …`` for a tuple type of the product
    schema; most such intersections are representable as one faceted
    :class:`SimpleType` (same-kind facet merge), but cross-kind combos
    (a length-faceted string ∧ an integer) are not.  This subclass keeps
    those exact rather than approximating: validation is the member
    conjunction, and the relation bootstraps stay sound via the
    member-wise rules in :meth:`SimpleType.is_subsumed_by` /
    :meth:`is_disjoint_from`.

    The inherited facet fields stay at their defaults (kind ``STRING``,
    no facets); only ``members`` carries semantics.
    """

    members: tuple[SimpleType, ...] = ()

    def validate(self, text: str) -> bool:
        return all(member.validate(text) for member in self.members)

    def is_empty(self) -> bool:
        # Exact emptiness of a conjunction is undecidable cheaply; any
        # empty member suffices, otherwise assume inhabited (sound for
        # every consumer here — False only forgoes a prune).
        return any(member.is_empty() for member in self.members)

    def is_subsumed_by(self, other: SimpleType) -> bool:
        if isinstance(other, IntersectionType):
            return all(self.is_subsumed_by(m) for m in other.members)
        # ∩members ⊆ other whenever any single member already is.
        return any(m.is_subsumed_by(other) for m in self.members)

    def is_disjoint_from(self, other: SimpleType) -> bool:
        if isinstance(other, IntersectionType):
            return any(self.is_disjoint_from(m) for m in other.members)
        return any(m.is_disjoint_from(other) for m in self.members)

    def __repr__(self) -> str:
        inner = " ∧ ".join(m.name for m in self.members)
        return f"IntersectionType({self.name!r}, {inner})"


def intersect_simple(
    a: SimpleType, b: SimpleType, *, name: str
) -> SimpleType:
    """A simple type accepting exactly ``valid(a) ∩ valid(b)``.

    Prefers a plain declaration when one side already subsumes the
    other; otherwise builds a flattened :class:`IntersectionType`.
    """
    if a.is_subsumed_by(b):
        return a if a.name == name else _renamed(a, name)
    if b.is_subsumed_by(a):
        return b if b.name == name else _renamed(b, name)
    members: list[SimpleType] = []
    for part in (a, b):
        if isinstance(part, IntersectionType):
            members.extend(part.members)
        else:
            members.append(part)
    return IntersectionType(name=name, kind=AtomicKind.STRING,
                            members=tuple(members))


def _renamed(decl: SimpleType, name: str) -> SimpleType:
    if isinstance(decl, IntersectionType):
        return IntersectionType(
            name=name, kind=AtomicKind.STRING, members=decl.members
        )
    from dataclasses import replace

    return replace(decl, name=name)


#: A simple type accepting nothing at all.  Chain composition uses it
#: for uninhabited corners of the product schema (the empty enumeration
#: makes every text fail, on any kind).
BOTTOM = SimpleType(
    name="⊥", kind=AtomicKind.STRING, enumeration=frozenset()
)


def compiled_checker(decl: SimpleType):
    """A specialized closure computing exactly ``decl.validate``.

    The generic :meth:`SimpleType.validate` re-dispatches on the atomic
    kind, rebuilds the facet :class:`Interval` and compares through
    :class:`~fractions.Fraction` arithmetic on every call.  All of that
    depends only on the declaration, so hot loops (the fused validation
    kernel's per-value check) bind it once here: the kind dispatch
    happens at build time, integer bounds collapse to two int compares,
    and unbounded decimals never construct a ``Fraction`` at all.
    Equivalence with ``validate`` on every text is asserted by the
    kernel equivalence fuzzer.
    """
    if isinstance(decl, IntersectionType):
        checks = tuple(compiled_checker(m) for m in decl.members)
        if len(checks) == 2:
            first, second = checks

            def check_intersection_2(text: str) -> bool:
                return first(text) and second(text)

            return check_intersection_2

        def check_intersection(text: str) -> bool:
            return all(check(text) for check in checks)

        return check_intersection
    kind = decl.kind
    enum = decl.enumeration
    if kind is AtomicKind.STRING:
        min_len = decl.min_length
        max_len = decl.max_length

        def check_string(text: str) -> bool:
            if min_len is not None and len(text) < min_len:
                return False
            if max_len is not None and len(text) > max_len:
                return False
            if enum is not None:
                return text in enum
            return True

        return check_string
    if kind is AtomicKind.BOOLEAN:

        def check_boolean(text: str) -> bool:
            lexical = text.strip()
            if lexical not in _BOOLEAN_LEXICALS:
                return False
            if enum is not None:
                return lexical in enum
            return True

        return check_boolean
    if kind is AtomicKind.INTEGER:
        interval = decl.interval()
        assert interval is not None
        # Integer values make the open/closed Fraction bounds collapse
        # to a closed int range: the smallest/largest admitted integer.
        lo = hi = None
        if interval.lower is not None:
            lo = math.ceil(interval.lower)
            if interval.lower_open and lo == interval.lower:
                lo += 1
        if interval.upper is not None:
            hi = math.floor(interval.upper)
            if interval.upper_open and hi == interval.upper:
                hi -= 1
        integer_match = _INTEGER_RE.match

        def check_integer(text: str) -> bool:
            lexical = text.strip()
            if integer_match(lexical) is None:
                return False
            value = int(lexical)
            if lo is not None and value < lo:
                return False
            if hi is not None and value > hi:
                return False
            if enum is not None:
                return lexical in enum
            return True

        return check_integer
    if kind is AtomicKind.DECIMAL:
        interval = decl.interval()
        assert interval is not None
        bounded = interval.lower is not None or interval.upper is not None
        contains = interval.contains
        decimal_match = _DECIMAL_RE.match

        def check_decimal(text: str) -> bool:
            lexical = text.strip()
            if decimal_match(lexical) is None:
                return False
            if bounded:
                value = Fraction(
                    lexical if lexical[-1] != "." else lexical[:-1]
                )
                if not contains(value):
                    return False
            if enum is not None:
                return lexical in enum
            return True

        return check_decimal
    # DATE (and any future kind): the generic path is dominated by
    # ``datetime.date`` construction anyway — nothing to specialize.
    return decl.validate


def _length_implies(narrow: SimpleType, wide: SimpleType) -> bool:
    lo_n = narrow.min_length or 0
    lo_w = wide.min_length or 0
    hi_n = narrow.max_length
    hi_w = wide.max_length
    if lo_n < lo_w:
        return False
    if hi_w is not None and (hi_n is None or hi_n > hi_w):
        return False
    return True


def _length_disjoint(a: SimpleType, b: SimpleType) -> bool:
    lo = max(a.min_length or 0, b.min_length or 0)
    hi_candidates = [h for h in (a.max_length, b.max_length) if h is not None]
    hi = min(hi_candidates) if hi_candidates else None
    return hi is not None and lo > hi


@dataclass(frozen=True)
class Interval:
    """An interval over a totally ordered value space.

    ``None`` bounds are unbounded.  ``integral`` marks integer value
    spaces, which matters for open-bound intersection tests
    (``(0, 1)`` contains no integer but does contain decimals).
    """

    lower: Optional[Fraction | datetime.date] = None
    lower_open: bool = False
    upper: Optional[Fraction | datetime.date] = None
    upper_open: bool = False
    integral: bool = False

    def contains(self, value) -> bool:
        if self.lower is not None:
            if value < self.lower or (self.lower_open and value == self.lower):
                return False
        if self.upper is not None:
            if value > self.upper or (self.upper_open and value == self.upper):
                return False
        return True

    def contains_interval(self, other: "Interval") -> bool:
        """Is ``other`` entirely inside ``self``?  (Conservative towards
        False when open/closed endpoints make it ambiguous for integral
        spaces — False only forgoes an optimization.)"""
        if self.lower is not None:
            if other.lower is None:
                return False
            if other.lower < self.lower:
                return False
            if (
                other.lower == self.lower
                and self.lower_open
                and not other.lower_open
            ):
                return False
        if self.upper is not None:
            if other.upper is None:
                return False
            if other.upper > self.upper:
                return False
            if (
                other.upper == self.upper
                and self.upper_open
                and not other.upper_open
            ):
                return False
        return True

    def intersects(self, other: "Interval", integral: bool = False) -> bool:
        """Do the intervals share a value?  ``integral`` restricts the
        shared value to integers (for integer/decimal comparisons)."""
        lower, lower_open = _max_bound(
            (self.lower, self.lower_open), (other.lower, other.lower_open)
        )
        upper, upper_open = _min_bound(
            (self.upper, self.upper_open), (other.upper, other.upper_open)
        )
        if lower is None or upper is None:
            interval_nonempty = True
        elif lower < upper:
            interval_nonempty = True
        elif lower == upper:
            interval_nonempty = not (lower_open or upper_open)
        else:
            interval_nonempty = False
        if not interval_nonempty:
            return False
        want_integer = integral or self.integral or other.integral
        if not want_integer:
            return True
        return _contains_integer(lower, lower_open, upper, upper_open)


def _max_bound(a, b):
    (va, oa), (vb, ob) = a, b
    if va is None:
        return vb, ob
    if vb is None:
        return va, oa
    if va > vb:
        return va, oa
    if vb > va:
        return vb, ob
    return va, oa or ob


def _min_bound(a, b):
    (va, oa), (vb, ob) = a, b
    if va is None:
        return vb, ob
    if vb is None:
        return va, oa
    if va < vb:
        return va, oa
    if vb < va:
        return vb, ob
    return va, oa or ob


def _contains_integer(lower, lower_open, upper, upper_open) -> bool:
    """Does the (possibly unbounded) interval contain an integer?
    Bounds are Fractions (date intervals never reach here)."""
    import math

    if lower is None or upper is None:
        return True  # a half-line always contains integers
    lo = math.ceil(lower)
    if lower_open and lo == lower:
        lo += 1
    hi = math.floor(upper)
    if upper_open and hi == upper:
        hi -= 1
    return lo <= hi


# -- builtin types --------------------------------------------------------------

def _builtin(name: str, kind: AtomicKind, **facets) -> SimpleType:
    return SimpleType(name=name, kind=kind, **facets)


#: Built-in XSD simple types (the subset the reproduction supports).
#: Derived integer types are expressed as INTEGER with range facets so
#: the generic facet algebra handles their relationships.
BUILTINS: dict[str, SimpleType] = {
    t.name: t
    for t in (
        _builtin("xsd:string", AtomicKind.STRING),
        _builtin("xsd:normalizedString", AtomicKind.STRING),
        _builtin("xsd:token", AtomicKind.STRING),
        _builtin("xsd:anyURI", AtomicKind.STRING),
        _builtin("xsd:boolean", AtomicKind.BOOLEAN),
        _builtin("xsd:decimal", AtomicKind.DECIMAL),
        _builtin("xsd:integer", AtomicKind.INTEGER),
        _builtin(
            "xsd:nonNegativeInteger",
            AtomicKind.INTEGER,
            min_inclusive=Fraction(0),
        ),
        _builtin(
            "xsd:positiveInteger", AtomicKind.INTEGER, min_inclusive=Fraction(1)
        ),
        _builtin(
            "xsd:nonPositiveInteger",
            AtomicKind.INTEGER,
            max_inclusive=Fraction(0),
        ),
        _builtin(
            "xsd:negativeInteger", AtomicKind.INTEGER, max_inclusive=Fraction(-1)
        ),
        _builtin(
            "xsd:long",
            AtomicKind.INTEGER,
            min_inclusive=Fraction(-(2**63)),
            max_inclusive=Fraction(2**63 - 1),
        ),
        _builtin(
            "xsd:int",
            AtomicKind.INTEGER,
            min_inclusive=Fraction(-(2**31)),
            max_inclusive=Fraction(2**31 - 1),
        ),
        _builtin(
            "xsd:short",
            AtomicKind.INTEGER,
            min_inclusive=Fraction(-(2**15)),
            max_inclusive=Fraction(2**15 - 1),
        ),
        _builtin(
            "xsd:byte",
            AtomicKind.INTEGER,
            min_inclusive=Fraction(-128),
            max_inclusive=Fraction(127),
        ),
        _builtin(
            "xsd:unsignedLong",
            AtomicKind.INTEGER,
            min_inclusive=Fraction(0),
            max_inclusive=Fraction(2**64 - 1),
        ),
        _builtin(
            "xsd:unsignedInt",
            AtomicKind.INTEGER,
            min_inclusive=Fraction(0),
            max_inclusive=Fraction(2**32 - 1),
        ),
        _builtin(
            "xsd:unsignedShort",
            AtomicKind.INTEGER,
            min_inclusive=Fraction(0),
            max_inclusive=Fraction(2**16 - 1),
        ),
        _builtin(
            "xsd:unsignedByte",
            AtomicKind.INTEGER,
            min_inclusive=Fraction(0),
            max_inclusive=Fraction(255),
        ),
        _builtin("xsd:date", AtomicKind.DATE),
    )
}

#: The single catch-all simple type of the paper's bare formalism.
ANY_SIMPLE = BUILTINS["xsd:string"]


def builtin(name: str) -> SimpleType:
    """Look up a built-in simple type by qualified name; accepts both
    ``xsd:integer`` and bare ``integer``."""
    key = name if name.startswith("xsd:") else f"xsd:{name}"
    try:
        return BUILTINS[key]
    except KeyError:
        raise SchemaError(f"unknown built-in simple type {name!r}") from None


def restrict(
    base: SimpleType,
    name: str,
    *,
    min_inclusive=None,
    max_inclusive=None,
    min_exclusive=None,
    max_exclusive=None,
    min_length: Optional[int] = None,
    max_length: Optional[int] = None,
    enumeration: Optional[frozenset[str]] = None,
) -> SimpleType:
    """Derive a new simple type from ``base`` by restriction.

    New facets must narrow the base: the derived type's accepted lexical
    space is validated to sit inside the base's by construction (facets
    are merged with the tighter bound winning).
    """

    def pick(new, old, tighter):
        if new is None:
            return old
        if old is not None and not tighter(new, old):
            raise SchemaError(
                f"restriction {name!r} loosens a facet of {base.name!r}"
            )
        return new

    def coerce(value):
        if value is None or isinstance(value, (Fraction, datetime.date)):
            return value
        if base.kind is AtomicKind.DATE:
            parsed = base.parse_value(str(value))
            if parsed is None:
                raise SchemaError(f"bad date facet value {value!r}")
            return parsed
        return Fraction(str(value))

    merged_enum = enumeration
    if base.enumeration is not None:
        merged_enum = (
            base.enumeration
            if enumeration is None
            else frozenset(enumeration) & base.enumeration
        )
    return SimpleType(
        name=name,
        kind=base.kind,
        min_inclusive=pick(
            coerce(min_inclusive), base.min_inclusive, lambda n, o: n >= o
        ),
        max_inclusive=pick(
            coerce(max_inclusive), base.max_inclusive, lambda n, o: n <= o
        ),
        min_exclusive=pick(
            coerce(min_exclusive), base.min_exclusive, lambda n, o: n >= o
        ),
        max_exclusive=pick(
            coerce(max_exclusive), base.max_exclusive, lambda n, o: n <= o
        ),
        min_length=pick(min_length, base.min_length, lambda n, o: n >= o),
        max_length=pick(max_length, base.max_length, lambda n, o: n <= o),
        enumeration=merged_enum,
    )
