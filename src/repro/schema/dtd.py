"""DTD front-end: parse DTD source into an abstract XML Schema.

A DTD is the special case of abstract XML Schema where every element
label carries one type regardless of context (Section 3, "DTDs").  The
parser handles the declarations the structural model needs:

* ``<!ELEMENT name (children-model)>`` — children content models in the
  standard DTD grammar (via :mod:`repro.remodel.parser`);
* ``<!ELEMENT name EMPTY>`` — the ε-only content model;
* ``<!ELEMENT name ANY>`` — any sequence of declared elements;
* ``<!ELEMENT name (#PCDATA)>`` — a simple type (χ content);
* ``<!ATTLIST ...>`` — attribute definitions (CDATA/ID/... keywords,
  enumerations, ``#REQUIRED``/``#IMPLIED``/``#FIXED``) mapped onto the
  attribute-validation extension;
* comments and processing instructions — skipped.

Mixed content ``(#PCDATA|a|b)*`` is outside the paper's tree model and
raises :class:`UnsupportedFeatureError`.

Each element label σ becomes a type named ``σ``; by default every
declared element may be a root (the common assumption in revalidation
settings, where the DOCTYPE is not part of the data) — pass ``roots`` to
restrict.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import DTDSyntaxError, UnsupportedFeatureError
from repro.remodel.ast import EPSILON, Regex, alt, star, sym
from repro.remodel.parser import parse_content_model
from dataclasses import dataclass

from repro.schema.model import AttributeDecl, ComplexType, Schema, TypeDef
from repro.schema.simple import builtin, restrict
from repro.xmltree.lexer import Scanner

def parse_dtd(
    source: str,
    *,
    roots: Optional[Iterable[str]] = None,
    name: str = "",
) -> Schema:
    """Parse DTD text (e.g. a DOCTYPE internal subset) into a schema."""
    reader = _DTDReader(source)
    declarations = reader.read()
    return dtd_schema(
        declarations, roots=roots, name=name, attlists=reader.attlists
    )


def dtd_schema(
    content_models: dict[str, str | Regex],
    *,
    roots: Optional[Iterable[str]] = None,
    name: str = "",
    attlists: Optional[dict[str, list["AttlistEntry"]]] = None,
) -> Schema:
    """Build a DTD-style schema from label → content-model mappings.

    Content models may be DTD-syntax strings (``"(a,b*)"``, ``"EMPTY"``,
    ``"ANY"``, ``"(#PCDATA)"``) or pre-built expressions.  ``attlists``
    carries parsed ``<!ATTLIST>`` entries per element; attributes on
    elements with ``#PCDATA`` content are rejected (the abstract model
    gives such elements simple types, which admit no attributes).
    """
    labels = set(content_models)
    types: dict[str, TypeDef] = {}
    extra_types: dict[str, TypeDef] = {}
    for label, model in content_models.items():
        declared = _declare(label, model, labels)
        entries = (attlists or {}).get(label, [])
        if entries:
            if not isinstance(declared, ComplexType):
                raise UnsupportedFeatureError(
                    f"element {label!r}: attributes on #PCDATA elements "
                    "are outside the abstract model (a simple type admits "
                    "no attributes)"
                )
            attributes: dict[str, AttributeDecl] = {}
            for entry in entries:
                decl, value_type = entry.to_declaration(label)
                attributes[decl.name] = decl
                if value_type is not None:
                    extra_types[decl.type_name] = value_type
            declared = ComplexType(
                declared.name,
                declared.content,
                declared.child_types,
                attributes,
            )
        types[label] = declared
    types.update(extra_types)
    root_labels = list(roots) if roots is not None else sorted(labels)
    unknown = [label for label in root_labels if label not in types]
    if unknown:
        raise DTDSyntaxError(f"root elements not declared: {unknown}")
    if "xsd:string" not in types and any(
        isinstance(declared, ComplexType) and declared.attributes
        for declared in types.values()
    ):
        types["xsd:string"] = builtin("string")
    return Schema(types, {label: label for label in root_labels}, name=name)


def is_dtd_schema(schema: Schema) -> bool:
    """Does the schema satisfy the DTD property — each label assigned at
    most one type across all contexts (including the root map)?"""
    assigned: dict[str, str] = dict()
    for declaration in schema.types.values():
        if not isinstance(declaration, ComplexType):
            continue
        for label, type_name in declaration.child_types.items():
            if assigned.setdefault(label, type_name) != type_name:
                return False
    for label, type_name in schema.roots.items():
        if assigned.setdefault(label, type_name) != type_name:
            return False
    return True


def label_type(schema: Schema, label: str) -> Optional[str]:
    """The unique type of a label in a DTD-style schema (None when the
    label is unknown)."""
    if label in schema.roots:
        return schema.roots[label]
    for declaration in schema.types.values():
        if isinstance(declaration, ComplexType):
            type_name = declaration.child_types.get(label)
            if type_name is not None:
                return type_name
    return None


# -- declaration building ------------------------------------------------------

def _declare(label: str, model: str | Regex, labels: set[str]) -> TypeDef:
    if isinstance(model, Regex):
        return _complex(label, model, labels)
    text = model.strip()
    if text == "EMPTY":
        return _complex(label, EPSILON, labels)
    if text == "ANY":
        if labels:
            any_model = star(alt(*(sym(other) for other in sorted(labels))))
        else:
            any_model = EPSILON
        return _complex(label, any_model, labels)
    expression = parse_content_model(text)
    symbols = expression.symbols()
    if "#PCDATA" in symbols:
        if symbols == {"#PCDATA"}:
            return builtin("string")  # χ content, unconstrained text
        raise UnsupportedFeatureError(
            f"element {label!r}: mixed content (#PCDATA with elements) is "
            "outside the paper's structural model"
        )
    return _complex(label, expression, labels)


def _complex(label: str, expression: Regex, labels: set[str]) -> ComplexType:
    undeclared = expression.symbols() - labels
    if undeclared:
        raise DTDSyntaxError(
            f"element {label!r} references undeclared elements "
            f"{sorted(undeclared)}"
        )
    child_types = {symbol: symbol for symbol in expression.symbols()}
    return ComplexType(label, expression, child_types)


# -- ATTLIST declarations ---------------------------------------------------------

#: DTD attribute types that collapse to unconstrained text in the model.
_TEXTUAL_ATTR_TYPES = frozenset(
    ("CDATA", "ID", "IDREF", "IDREFS", "ENTITY", "ENTITIES",
     "NMTOKEN", "NMTOKENS")
)


@dataclass(frozen=True)
class AttlistEntry:
    """One attribute definition from an ``<!ATTLIST>`` declaration."""

    name: str
    #: "CDATA"-style keyword, or the enumeration members.
    keyword: str
    enumeration: tuple[str, ...] = ()
    #: "#REQUIRED" | "#IMPLIED" | "#FIXED" | "" (plain default value)
    default_kind: str = "#IMPLIED"
    default_value: Optional[str] = None

    def to_declaration(
        self, owner: str
    ) -> tuple[AttributeDecl, Optional[TypeDef]]:
        """(AttributeDecl, new simple type to register or None).

        Enumerated and ``#FIXED`` attributes get a dedicated enumeration
        type named ``#attr:owner.name``; everything else is plain text.
        """
        if self.default_kind == "#FIXED":
            assert self.default_value is not None
            type_name = f"#attr:{owner}.{self.name}"
            value_type = restrict(
                builtin("string"),
                type_name,
                enumeration=frozenset((self.default_value,)),
            )
        elif self.enumeration:
            type_name = f"#attr:{owner}.{self.name}"
            value_type = restrict(
                builtin("string"),
                type_name,
                enumeration=frozenset(self.enumeration),
            )
        else:
            type_name = "xsd:string"
            value_type = None
        return (
            AttributeDecl(
                self.name, type_name,
                required=self.default_kind == "#REQUIRED",
            ),
            value_type,
        )


# -- DTD text reader -----------------------------------------------------------

class _DTDReader:
    """Reads ``<!ELEMENT>``/``<!ATTLIST>`` declarations from DTD text."""

    def __init__(self, source: str):
        self.scanner = Scanner(source)
        self.attlists: dict[str, list[AttlistEntry]] = {}

    def read(self) -> dict[str, str]:
        declarations: dict[str, str] = {}
        scanner = self.scanner
        while True:
            scanner.skip_whitespace()
            if scanner.at_end():
                break
            if scanner.starts_with("<!--"):
                scanner.advance(4)
                scanner.read_until("-->", what="comment")
            elif scanner.starts_with("<!ELEMENT"):
                name, model = self._read_element()
                if name in declarations:
                    raise DTDSyntaxError(f"duplicate <!ELEMENT {name}>")
                declarations[name] = model
            elif scanner.starts_with("<!ATTLIST"):
                self._read_attlist()
            elif scanner.starts_with("<!ENTITY"):
                scanner.read_until(">", what="entity declaration")
            elif scanner.starts_with("<!NOTATION"):
                scanner.read_until(">", what="notation declaration")
            elif scanner.starts_with("<?"):
                scanner.read_until("?>", what="processing instruction")
            else:
                line, column = scanner.line_column()
                raise DTDSyntaxError(
                    f"unexpected DTD content at line {line}, column {column}"
                )
        return declarations

    def _read_element(self) -> tuple[str, str]:
        scanner = self.scanner
        scanner.expect("<!ELEMENT")
        scanner.skip_whitespace()
        name = scanner.read_name()
        scanner.skip_whitespace()
        model = scanner.read_until(">", what="<!ELEMENT> declaration").strip()
        if not model:
            raise DTDSyntaxError(f"<!ELEMENT {name}> missing a content model")
        return name, model

    def _read_attlist(self) -> None:
        scanner = self.scanner
        scanner.expect("<!ATTLIST")
        scanner.skip_whitespace()
        element_name = scanner.read_name()
        entries = self.attlists.setdefault(element_name, [])
        while True:
            scanner.skip_whitespace()
            if scanner.match(">"):
                return
            if scanner.at_end():
                raise DTDSyntaxError(
                    f"unterminated <!ATTLIST {element_name}>"
                )
            entries.append(self._read_attdef(element_name))

    def _read_attdef(self, element_name: str) -> AttlistEntry:
        scanner = self.scanner
        attr_name = scanner.read_name()
        scanner.skip_whitespace()
        enumeration: tuple[str, ...] = ()
        if scanner.match("("):
            members = []
            while True:
                scanner.skip_whitespace()
                members.append(scanner.read_name())
                scanner.skip_whitespace()
                if scanner.match(")"):
                    break
                scanner.expect("|")
            keyword = "ENUM"
            enumeration = tuple(members)
        else:
            keyword = scanner.read_name()
            if keyword == "NOTATION":
                raise UnsupportedFeatureError(
                    f"<!ATTLIST {element_name}>: NOTATION attributes are "
                    "not supported"
                )
            if keyword not in _TEXTUAL_ATTR_TYPES:
                raise DTDSyntaxError(
                    f"<!ATTLIST {element_name}>: unknown attribute type "
                    f"{keyword!r}"
                )
        scanner.skip_whitespace()
        default_kind = "#IMPLIED"
        default_value: Optional[str] = None
        if scanner.match("#REQUIRED"):
            default_kind = "#REQUIRED"
        elif scanner.match("#IMPLIED"):
            default_kind = "#IMPLIED"
        elif scanner.match("#FIXED"):
            default_kind = "#FIXED"
            scanner.skip_whitespace()
            default_value = scanner.read_quoted()
        elif scanner.peek() in ("'", '"'):
            default_kind = ""
            default_value = scanner.read_quoted()
        else:
            raise DTDSyntaxError(
                f"<!ATTLIST {element_name}>: expected a default "
                f"declaration for {attr_name!r}"
            )
        return AttlistEntry(
            attr_name, keyword, enumeration, default_kind, default_value
        )
