"""Deterministic synthesis of minimal valid values and trees.

The document repairer needs to *invent* content: when a required
element is missing, a smallest valid subtree of its type must be
fabricated.  Everything here is deterministic (no randomness), so
repairs are reproducible:

* :func:`canonical_value` — a canonical text conforming to a simple
  type (smallest in-range integer, first enumeration member, ...);
* :func:`minimal_tree` — a smallest-height valid tree for a type, built
  from shortest accepted content-model words, restricted to productive
  child labels.
"""

from __future__ import annotations

import datetime
import math
from fractions import Fraction
from typing import Optional

from repro.errors import SchemaError
from repro.schema.model import ComplexType, Schema, SimpleType
from repro.schema.productive import productive_types
from repro.schema.simple import AtomicKind
from repro.xmltree.dom import Element, Text


def canonical_value(declaration: SimpleType) -> str:
    """A deterministic text value conforming to ``declaration``.

    Raises :class:`SchemaError` for value spaces we cannot witness
    (e.g. an enumeration whose every member violates another facet).
    """
    if declaration.enumeration is not None:
        for member in sorted(declaration.enumeration):
            if declaration.validate(member):
                return member
        raise SchemaError(
            f"simple type {declaration.name!r} has an empty value space"
        )
    if declaration.kind is AtomicKind.STRING:
        length = declaration.min_length or 0
        return "x" * length
    if declaration.kind is AtomicKind.BOOLEAN:
        return "true"
    if declaration.kind is AtomicKind.DATE:
        candidate = _canonical_date(declaration)
        if candidate is None:
            raise SchemaError(
                f"simple type {declaration.name!r} has an empty value space"
            )
        return candidate.isoformat()
    # Numeric kinds: the smallest admissible magnitude.
    interval = declaration.interval()
    assert interval is not None
    value = _canonical_numeric(interval,
                               declaration.kind is AtomicKind.INTEGER)
    if value is None:
        raise SchemaError(
            f"simple type {declaration.name!r} has an empty value space"
        )
    if declaration.kind is AtomicKind.INTEGER:
        return str(int(value))
    if value.denominator == 1:
        return str(value.numerator)
    return f"{float(value):g}"


def _canonical_numeric(interval, integral: bool) -> Optional[Fraction]:
    lower, lower_open = interval.lower, interval.lower_open
    upper, upper_open = interval.upper, interval.upper_open
    if integral:
        if lower is None:
            candidate = Fraction(0) if _admits(interval, Fraction(0)) else None
            if candidate is None and upper is not None:
                bound = math.floor(upper)
                if upper_open and bound == upper:
                    bound -= 1
                candidate = Fraction(bound)
            return candidate
        low = math.ceil(lower)
        if lower_open and Fraction(low) == lower:
            low += 1
        candidate = Fraction(low)
        return candidate if _admits(interval, candidate) else None
    # Decimals: prefer 0, then the boundary (nudged inward if open).
    for candidate in (Fraction(0), lower, upper):
        if candidate is None:
            continue
        if _admits(interval, candidate):
            return candidate
    if lower is not None and upper is not None:
        midpoint = (lower + upper) / 2
        if _admits(interval, midpoint):
            return midpoint
        return None
    if lower is not None:
        return lower + 1
    if upper is not None:
        return upper - 1
    return Fraction(0)


def _admits(interval, value: Fraction) -> bool:
    return interval.contains(value)


def _canonical_date(declaration: SimpleType) -> Optional[datetime.date]:
    interval = declaration.interval()
    default = datetime.date(2004, 1, 1)  # the paper's year
    if interval is None or interval.contains(default):
        return default
    for bound, open_, delta in (
        (interval.lower, interval.lower_open, 1),
        (interval.upper, interval.upper_open, -1),
    ):
        if isinstance(bound, datetime.date):
            candidate = (
                bound + datetime.timedelta(days=delta) if open_ else bound
            )
            if interval.contains(candidate):
                return candidate
    return None


def minimal_tree(
    schema: Schema, type_name: str, label: str
) -> Element:
    """A deterministic, minimal valid tree of ``type_name`` rooted at
    ``label``.

    Minimal in a greedy sense: the shortest accepted word of each
    content model (restricted to productive labels), recursively.
    Raises :class:`SchemaError` when the type is non-productive.
    """
    productive = productive_types(schema)
    if type_name not in productive:
        raise SchemaError(f"type {type_name!r} accepts no tree")
    return _build(schema, type_name, label, productive)


def _build(
    schema: Schema, type_name: str, label: str, productive: frozenset[str]
) -> Element:
    declaration = schema.type(type_name)
    node = Element(label)
    if isinstance(declaration, SimpleType):
        value = canonical_value(declaration)
        if value:
            node.append(Text(value))
        return node
    assert isinstance(declaration, ComplexType)
    for attr in declaration.attributes.values():
        if attr.required:
            value_type = schema.type(attr.type_name)
            assert isinstance(value_type, SimpleType)
            node.attributes[attr.name] = canonical_value(value_type)
    allowed = frozenset(
        child_label
        for child_label, child in declaration.child_types.items()
        if child in productive
    )
    dfa = schema.content_dfa(type_name)
    if allowed != declaration.content.symbols():
        from repro.remodel.toregex import restrict_language

        dfa = restrict_language(dfa, allowed)
    word = dfa.shortest_accepted()
    assert word is not None  # productivity guarantees it
    for child_label in word:
        child_type = declaration.child_types[child_label]
        node.append(_build(schema, child_type, child_label, productive))
    return node
