"""Preprocessed schema pairs — the static artifact of the paper's setup.

The paper's scenario: schemas A and B are known statically and may be
preprocessed; documents arrive at runtime.  :class:`SchemaPair` is that
preprocessing, bundling

* ``R_sub`` — subsumed type pairs (skip the subtree),
* ``R_dis`` — disjoint type pairs (fail immediately), stored via the
  complement ``R_nondis`` exactly as computed,
* per-type-pair :class:`StringCastValidator` machines (the Section 4
  immediate decision automata for content-model checks), built lazily
  and cached, and
* per-target-type :class:`ImmediateDecisionAutomaton` for validating
  freshly inserted content.

Everything here depends only on the two schemas — memory is independent
of any document, which is the paper's headline contrast with
document-preprocessing incremental validators.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.immediate import ImmediateDecisionAutomaton
from repro.automata.stringcast import StringCastValidator
from repro.schema.disjoint import compute_nondisjoint
from repro.schema.model import ComplexType, Schema
from repro.schema.subsumption import compute_subsumption


class SchemaPair:
    """Statically preprocessed (source schema, target schema) pair."""

    def __init__(self, source: Schema, target: Schema):
        self.source = source
        self.target = target
        #: Definition 4: pairs with ``valid(τ) ⊆ valid(τ')``.
        self.r_sub: frozenset[tuple[str, str]] = compute_subsumption(
            source, target
        )
        #: Definition 5: pairs with ``valid(τ) ∩ valid(τ') ≠ ∅``.
        self.r_nondis: frozenset[tuple[str, str]] = compute_nondisjoint(
            source, target
        )
        self._string_casts: dict[tuple[str, str], StringCastValidator] = {}
        self._target_immed: dict[str, ImmediateDecisionAutomaton] = {}

    # -- relation queries ---------------------------------------------------

    def is_subsumed(self, source_type: str, target_type: str) -> bool:
        """``τ ≤ τ'`` — every source-valid tree is target-valid."""
        return (source_type, target_type) in self.r_sub

    def is_disjoint(self, source_type: str, target_type: str) -> bool:
        """``τ ⊘ τ'`` — no tree is valid under both."""
        return (source_type, target_type) not in self.r_nondis

    # -- cached automata -------------------------------------------------------

    def string_cast(
        self, source_type: str, target_type: str
    ) -> StringCastValidator:
        """Content-model cast machine for a complex type pair (cached)."""
        key = (source_type, target_type)
        if key not in self._string_casts:
            self._string_casts[key] = StringCastValidator(
                self.source.content_dfa(source_type),
                self.target.content_dfa(target_type),
            )
        return self._string_casts[key]

    def target_immed(self, target_type: str) -> ImmediateDecisionAutomaton:
        """Definition 6 automaton for a target content model (cached);
        used when no source knowledge exists (inserted subtrees)."""
        if target_type not in self._target_immed:
            self._target_immed[target_type] = (
                ImmediateDecisionAutomaton.from_dfa(
                    self.target.content_dfa(target_type)
                )
            )
        return self._target_immed[target_type]

    def warm(self) -> None:
        """Eagerly build every complex-pair cast machine (benchmarking
        aid: isolates static preprocessing cost from runtime cost)."""
        for tau, src_decl in self.source.types.items():
            if not isinstance(src_decl, ComplexType):
                continue
            for tau_p, tgt_decl in self.target.types.items():
                if not isinstance(tgt_decl, ComplexType):
                    continue
                if self.is_subsumed(tau, tau_p) or self.is_disjoint(tau, tau_p):
                    continue
                self.string_cast(tau, tau_p)
        for tau_p, tgt_decl in self.target.types.items():
            if isinstance(tgt_decl, ComplexType):
                self.target_immed(tau_p)

    # -- root helpers ----------------------------------------------------------

    def root_pair(self, label: str) -> Optional[tuple[str, str]]:
        """(source type, target type) for a root label, or None when
        either schema rejects it as a root."""
        source_type = self.source.root_type(label)
        target_type = self.target.root_type(label)
        if source_type is None or target_type is None:
            return None
        return source_type, target_type

    def __repr__(self) -> str:
        return (
            f"SchemaPair({self.source.name!r} -> {self.target.name!r}, "
            f"|R_sub|={len(self.r_sub)}, |R_nondis|={len(self.r_nondis)})"
        )
