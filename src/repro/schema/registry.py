"""Preprocessed schema pairs — the static artifact of the paper's setup.

The paper's scenario: schemas A and B are known statically and may be
preprocessed; documents arrive at runtime.  :class:`SchemaPair` is that
preprocessing, bundling

* ``R_sub`` — subsumed type pairs (skip the subtree),
* ``R_dis`` — disjoint type pairs (fail immediately), stored via the
  complement ``R_nondis`` exactly as computed,
* per-type-pair :class:`StringCastValidator` machines (the Section 4
  immediate decision automata for content-model checks), built lazily
  and cached, and
* per-target-type :class:`ImmediateDecisionAutomaton` for validating
  freshly inserted content.

Everything here depends only on the two schemas — memory is independent
of any document, which is the paper's headline contrast with
document-preprocessing incremental validators.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.compiled import (
    CompiledDFA,
    CompiledImmediate,
    LazyPairTable,
    SymbolTable,
)
from repro.automata.immediate import ImmediateDecisionAutomaton
from repro.automata.stringcast import StringCastValidator
from repro.schema.disjoint import compute_nondisjoint
from repro.schema.model import ComplexType, Schema
from repro.schema.subsumption import compute_subsumption


class SchemaPair:
    """Statically preprocessed (source schema, target schema) pair.

    The whole object is a *compiled artifact*: it is picklable, and
    :mod:`repro.schema.artifacts` persists warmed pairs keyed by a
    content hash of the two schemas, so the preprocessing survives
    process restarts.
    """

    def __init__(
        self,
        source: Schema,
        target: Schema,
        *,
        r_sub: Optional[frozenset[tuple[str, str]]] = None,
        r_nondis: Optional[frozenset[tuple[str, str]]] = None,
    ):
        self.source = source
        self.target = target
        #: The pair alphabet Σ ∪ Σ' interned to dense ids — shared by
        #: every compiled automaton below, so a child-label string is
        #: interned once per node and scanned by integer indexing.
        self.symbols: SymbolTable = SymbolTable(
            sorted(source.alphabet | target.alphabet)
        )
        #: Definition 4: pairs with ``valid(τ) ⊆ valid(τ')``.  A caller
        #: may seed a precomputed relation (chain composition joins the
        #: per-hop relations instead of re-running the fixpoint); any
        #: sound under-approximation only forgoes skips, never verdicts.
        self.r_sub: frozenset[tuple[str, str]] = (
            compute_subsumption(source, target) if r_sub is None else r_sub
        )
        #: Definition 5: pairs with ``valid(τ) ∩ valid(τ') ≠ ∅``.  Also
        #: seedable; an over-approximation only forgoes fast-fails.
        self.r_nondis: frozenset[tuple[str, str]] = (
            compute_nondisjoint(source, target)
            if r_nondis is None
            else r_nondis
        )
        #: Per-type-pair cast machines, promoted lazily on first touch
        #: (:class:`LazyPairTable`); :meth:`warm` can still materialize
        #: the full product for persisted artifacts.
        self._string_casts: LazyPairTable = LazyPairTable()
        self._target_immed: dict[str, ImmediateDecisionAutomaton] = {}
        self._target_immed_compiled: dict[str, CompiledImmediate] = {}
        self._target_content: dict[str, CompiledDFA] = {}
        self._source_child_rows: dict[str, tuple] = {}
        self._target_child_rows: dict[str, tuple] = {}
        #: Fused per-pair action/content tables for the validation
        #: kernel (:mod:`repro.schema.pairkernel`), built on first use.
        self._pair_kernel = None

    # -- relation queries ---------------------------------------------------

    def is_subsumed(self, source_type: str, target_type: str) -> bool:
        """``τ ≤ τ'`` — every source-valid tree is target-valid."""
        return (source_type, target_type) in self.r_sub

    def is_disjoint(self, source_type: str, target_type: str) -> bool:
        """``τ ⊘ τ'`` — no tree is valid under both."""
        return (source_type, target_type) not in self.r_nondis

    # -- cached automata -------------------------------------------------------

    def string_cast(
        self, source_type: str, target_type: str
    ) -> StringCastValidator:
        """Content-model cast machine for a complex type pair, promoted
        to the pair table on first touch."""
        key = (source_type, target_type)
        machine = self._string_casts.get(key)
        if machine is None:
            machine = self._string_casts.put(
                key,
                StringCastValidator(
                    self.source.content_dfa(source_type),
                    self.target.content_dfa(target_type),
                    symbols=self.symbols,
                ),
            )
        return machine

    def target_immed(self, target_type: str) -> ImmediateDecisionAutomaton:
        """Definition 6 automaton for a target content model (cached);
        used when no source knowledge exists (inserted subtrees)."""
        if target_type not in self._target_immed:
            self._target_immed[target_type] = (
                ImmediateDecisionAutomaton.from_dfa(
                    self.target.content_dfa(target_type)
                )
            )
        return self._target_immed[target_type]

    def target_immed_compiled(self, target_type: str) -> CompiledImmediate:
        """Dense-table compilation of :meth:`target_immed` over the pair
        symbol table (cached) — the stats-free scanning path."""
        if target_type not in self._target_immed_compiled:
            self._target_immed_compiled[target_type] = (
                CompiledImmediate.from_immediate(
                    self.target_immed(target_type), self.symbols
                )
            )
        return self._target_immed_compiled[target_type]

    def target_content(self, target_type: str) -> CompiledDFA:
        """A target content DFA compiled over the *pair* symbol table
        (cached); rows carry ``-1`` for source-only labels."""
        if target_type not in self._target_content:
            self._target_content[target_type] = CompiledDFA.from_dfa(
                self.target.content_dfa(target_type), self.symbols
            )
        return self._target_content[target_type]

    def source_child_row(self, source_type: str) -> tuple:
        """``types_τ`` of a source complex type as a dense row over the
        *pair* symbol table (cached): ``row[sym]`` is the child-type
        name or ``None``.  With documents parsed against
        ``pair.symbols``, the cast descent resolves child types by tuple
        indexing instead of per-child dict lookups on label strings.
        """
        try:
            rows = self._source_child_rows
        except AttributeError:  # pre-existing pickled artifact
            rows = self._source_child_rows = {}
        row = rows.get(source_type)
        if row is None:
            child_types = self.source.types[source_type].child_types
            row = tuple(
                child_types.get(label) for label in self.symbols.labels
            )
            rows[source_type] = row
        return row

    def target_child_row(self, target_type: str) -> tuple:
        """Like :meth:`source_child_row`, for a target complex type."""
        try:
            rows = self._target_child_rows
        except AttributeError:  # pre-existing pickled artifact
            rows = self._target_child_rows = {}
        row = rows.get(target_type)
        if row is None:
            child_types = self.target.types[target_type].child_types
            row = tuple(
                child_types.get(label) for label in self.symbols.labels
            )
            rows[target_type] = row
        return row

    def kernel(self):
        """The fused :class:`~repro.schema.pairkernel.PairKernel` of
        this pair — one action row per type pair collapsing the content
        step, child-type assignment, subsumption and disjointness
        decisions into a single table load.  Built lazily (records
        materialize on first entry); :meth:`warm` forces the reachable
        set so persisted artifacts carry it complete."""
        try:
            kernel = self._pair_kernel
        except AttributeError:  # pre-existing pickled artifact
            kernel = self._pair_kernel = None
        if kernel is None:
            from repro.schema.pairkernel import PairKernel

            kernel = self._pair_kernel = PairKernel(self)
        return kernel

    def warm(self, *, eager_pairs: bool = True) -> None:
        """Eagerly build the pair's runtime machines, so validation pays
        no lazy-construction cost (and so a persisted artifact carries
        everything — see :mod:`repro.schema.artifacts`).

        Coverage rule: string-cast machines are built for every complex
        (τ, τ') with τ reachable in the source schema and τ' reachable
        in the target schema (pairs that are subsumed or disjoint never
        scan, so they get no machine); target immediate automata are
        built for complex target types *reachable from the target root
        map* — a type unreachable from every root can never be assigned
        to a node by the tree validators, whose type assignment starts
        at ``R`` and descends through ``types_τ``.  This includes types
        that sit below subsumed pairs: the with-modifications validator
        reaches them through inserted subtrees, so they must stay
        warmed.  The one exception is the DTD label-indexed mode, where
        an exotic schema can assign a root-unreachable type to a label;
        such types fall back to lazy construction on first use.

        ``eager_pairs=False`` skips the quadratic (τ, τ') product and
        leaves string-cast machines to first-touch promotion in the
        :class:`LazyPairTable` — the right trade when a pair serves few
        documents, or when the documents exercise a sparse slice of the
        product.  Per-target-type machines (linear in the type count)
        are always warmed.
        """
        source_reachable = self.source.reachable_types()
        target_reachable = self.target.reachable_types()
        if eager_pairs:
            for tau in source_reachable:
                if not isinstance(self.source.types[tau], ComplexType):
                    continue
                for tau_p in target_reachable:
                    if not isinstance(self.target.types[tau_p], ComplexType):
                        continue
                    if self.is_subsumed(tau, tau_p) or self.is_disjoint(
                        tau, tau_p
                    ):
                        continue
                    self.string_cast(tau, tau_p)
        for tau_p in target_reachable:
            if isinstance(self.target.types[tau_p], ComplexType):
                self.target_immed(tau_p)
                self.target_immed_compiled(tau_p)
                self.target_content(tau_p)
        # The fused kernel's reachable records ride along (linear in
        # the pairs a document can actually touch from the root map).
        self.kernel().warm()

    # -- root helpers ----------------------------------------------------------

    def root_pair(self, label: str) -> Optional[tuple[str, str]]:
        """(source type, target type) for a root label, or None when
        either schema rejects it as a root."""
        source_type = self.source.root_type(label)
        target_type = self.target.root_type(label)
        if source_type is None or target_type is None:
            return None
        return source_type, target_type

    def __repr__(self) -> str:
        return (
            f"SchemaPair({self.source.name!r} -> {self.target.name!r}, "
            f"|R_sub|={len(self.r_sub)}, |R_nondis|={len(self.r_nondis)})"
        )
