"""Fused per-pair action tables — the static heart of the validation
kernel.

The streaming cast (:class:`~repro.core.streaming.StreamingCastValidator`)
makes four decisions per child element: feed the label to the parent's
content machine, assign the child's (source, target) type pair, test
subsumption (skip the subtree), and test disjointness (fail).  All four
depend only on the parent's type pair and the child's interned label —
document-independent, exactly the paper's static-preprocessing stance —
so :class:`PairKernel` collapses them into one ``array('i')`` *action
row* per type pair: ``action[sid]`` is either a negative sentinel
(:data:`A_NO_TARGET`/:data:`A_NO_SOURCE`/:data:`A_SUBSUME`/
:data:`A_DISJOINT`) or the record id of the child's own
:class:`PairRecord`.  The fused loop in :mod:`repro.core.castkernel`
then resolves a child with one table load instead of four method calls.

Each record also carries the flat content tables of its pair machine
(the Section 4 immediate decision automaton for complex/complex pairs,
the plain target content DFA for simple-source parents, nothing for
simple targets), so the per-child feed is one more indexed load against
the same record.

Records materialize lazily on first entry — the same first-touch
promotion policy as :class:`~repro.automata.compiled.LazyPairTable`, so
an unwarmed pair still only compiles machines for type pairs a document
actually exercises.  :meth:`PairKernel.warm` forces the full reachable
set for persisted artifacts.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.schema.model import ComplexType, SimpleType
from repro.schema.simple import compiled_checker

#: ``action[sid]`` sentinels (child record ids are ``>= 0``).
A_NO_TARGET = -1   #: no target child type — "no target type assigned"
A_NO_SOURCE = -2   #: no source child type — promise violated
A_SUBSUME = -3     #: subsumed pair — skip the whole subtree
A_DISJOINT = -4    #: disjoint pair — fail immediately

#: Record kinds.
K_MACHINE = 0      #: complex source → complex target: pair automaton
K_PLAIN = 1        #: simple source → complex target: target content DFA
K_SIMPLE = 2       #: simple target: value check only, children illegal


class PairRecord:
    """Everything the fused loop needs about one (source, target) type
    pair, flat and precomputed.  ``ready`` gates lazy materialization;
    until then only the identity fields are valid."""

    __slots__ = (
        "rid", "source_type", "target_type", "kind",
        "table", "flags", "width", "start", "always_accepts",
        "action", "target_decl", "simple_decl", "has_attrs", "ready",
        "check",
    )

    def __init__(self, rid: int, source_type: str, target_type: str):
        self.rid = rid
        self.source_type = source_type
        self.target_type = target_type
        self.kind = -1
        self.table: Optional[array] = None
        self.flags: Optional[bytes] = None
        self.width = 0
        self.start = 0
        self.always_accepts = False
        self.action: Optional[array] = None
        self.target_decl = None
        self.simple_decl: Optional[SimpleType] = None
        self.has_attrs = False
        self.ready = False
        #: Specialized value checker for simple targets
        #: (:func:`repro.schema.simple.compiled_checker`) — a closure,
        #: so it never pickles; rebuilt lazily after artifact loads.
        self.check = None

    def __getstate__(self):
        return tuple(
            None if name == "check" else getattr(self, name)
            for name in self.__slots__
        )

    def __setstate__(self, state):
        self.check = None
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    def __repr__(self) -> str:
        return (
            f"PairRecord({self.rid}, {self.source_type!r} -> "
            f"{self.target_type!r}, ready={self.ready})"
        )


class PairKernel:
    """Flat action/content tables for every reachable type pair of one
    :class:`~repro.schema.registry.SchemaPair`."""

    def __init__(self, pair) -> None:
        self.pair = pair
        self.records: list[PairRecord] = []
        self._ids: dict[tuple[str, str], int] = {}
        #: root label → action code (same encoding as action rows).
        self.root_actions: dict[str, int] = {}
        for label in sorted(
            set(pair.source.roots) | set(pair.target.roots)
        ):
            self.root_actions[label] = self._classify(
                pair.source.root_type(label), pair.target.root_type(label)
            )

    def _classify(
        self, source_type: Optional[str], target_type: Optional[str]
    ) -> int:
        """One action code for a resolved (source, target) assignment —
        the decision order of ``StreamingCastValidator._start``."""
        if target_type is None:
            return A_NO_TARGET
        if source_type is None:
            return A_NO_SOURCE
        pair = self.pair
        if pair.is_subsumed(source_type, target_type):
            return A_SUBSUME
        if pair.is_disjoint(source_type, target_type):
            return A_DISJOINT
        return self.record_id(source_type, target_type)

    def record_id(self, source_type: str, target_type: str) -> int:
        """The record id for a type pair, allocating a stub on first
        request (cycle-safe: the stub exists before its row is built)."""
        key = (source_type, target_type)
        rid = self._ids.get(key)
        if rid is None:
            rid = len(self.records)
            self._ids[key] = rid
            self.records.append(PairRecord(rid, source_type, target_type))
        return rid

    def materialize(self, record: PairRecord) -> PairRecord:
        """Fill a stub record: content tables, attribute gate, and the
        fused action row (allocating child stubs as needed)."""
        if record.ready:
            return record
        pair = self.pair
        target_decl = pair.target.type(record.target_type)
        record.target_decl = target_decl
        record.width = len(pair.symbols)
        if isinstance(target_decl, SimpleType):
            record.kind = K_SIMPLE
            record.simple_decl = target_decl
            record.check = compiled_checker(target_decl)
            record.has_attrs = False
        else:
            record.has_attrs = bool(target_decl.attributes)
            source_decl = pair.source.type(record.source_type)
            if isinstance(source_decl, ComplexType):
                machine = pair.string_cast(
                    record.source_type, record.target_type
                )
                immed = machine.c_immed_compiled
                assert immed is not None  # pair-built machines compile
                record.kind = K_MACHINE
                record.table = immed.flat
                record.flags = immed.flags
                record.start = immed.start
                record.always_accepts = machine.always_accepts
            else:
                compiled = pair.target_content(record.target_type)
                record.kind = K_PLAIN
                record.table = compiled.flat
                record.flags = compiled.flags
                record.start = compiled.start
                record.always_accepts = False
            record.action = self._action_row(record, source_decl)
        record.ready = True
        return record

    def _action_row(self, record: PairRecord, source_decl) -> array:
        pair = self.pair
        target_row = pair.target_child_row(record.target_type)
        source_row = (
            pair.source_child_row(record.source_type)
            if isinstance(source_decl, ComplexType)
            else None
        )
        return array(
            "i",
            (
                self._classify(
                    source_row[sid] if source_row is not None else None,
                    target_row[sid],
                )
                if target_row[sid] is not None
                else A_NO_TARGET
                for sid in range(len(pair.symbols))
            ),
        )

    def record(self, rid: int) -> PairRecord:
        """The materialized record for ``rid``."""
        rec = self.records[rid]
        if not rec.ready:
            self.materialize(rec)
        return rec

    def warm(self) -> None:
        """Materialize every record reachable from the root actions, so
        persisted artifacts carry complete tables."""
        pending = [
            rid for rid in self.root_actions.values() if rid >= 0
        ]
        seen = set(pending)
        while pending:
            rec = self.materialize(self.records[pending.pop()])
            if rec.action is None:
                continue
            for act in rec.action:
                if act >= 0 and act not in seen:
                    seen.add(act)
                    pending.append(act)

    def child_types(self, record: PairRecord, sid: int) -> tuple:
        """(source, target) child types under a record — cold-path
        helper for failure messages."""
        pair = self.pair
        target_type = pair.target_child_row(record.target_type)[sid]
        source_decl = pair.source.type(record.source_type)
        source_type = (
            pair.source_child_row(record.source_type)[sid]
            if isinstance(source_decl, ComplexType)
            else None
        )
        return source_type, target_type

    def __repr__(self) -> str:
        ready = sum(1 for r in self.records if r.ready)
        return f"PairKernel({ready}/{len(self.records)} records ready)"
