"""XSD front-end: parse a W3C XML Schema document into an abstract
XML Schema.

Supported subset — everything the paper's schemas (Figures 1 and 2) and
its experiments exercise, plus the common structuring features around
them:

* global ``xsd:element`` declarations (→ the root map ``R``);
* named and anonymous ``xsd:complexType`` with ``xsd:sequence`` /
  ``xsd:choice`` particles, nested arbitrarily, with ``minOccurs`` /
  ``maxOccurs`` (including ``unbounded``);
* local elements by ``name``+``type``, by inline type, or by ``ref`` to
  a global element;
* ``xsd:all`` groups of optional/required local elements (compiled by
  permutation expansion, capped to keep the content model small);
* named and anonymous ``xsd:simpleType`` via ``xsd:restriction`` with
  the bound facets (``minInclusive``/``maxInclusive``/``minExclusive``/
  ``maxExclusive``), ``enumeration``, ``length``/``minLength``/
  ``maxLength``;
* the built-in simple types of :mod:`repro.schema.simple`;
* substitution groups (references to a head expand to a choice over its
  concrete members) and ``abstract`` elements;
* ``xsd:key`` / ``xsd:unique`` / ``xsd:keyref`` identity constraints
  (see :mod:`repro.schema.identity`);
* ``xsd:attribute`` declarations with ``use`` and simple types (the
  attribute-validation extension).

Unsupported XSD features raise :class:`UnsupportedFeatureError` with the
offending construct named: wildcards (``xsd:any``/``xsd:anyAttribute``),
type derivation of complex types, ``xsd:group``/``xsd:attributeGroup``,
``mixed`` content, ``xsd:list``/``xsd:union`` simple types.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import UnsupportedFeatureError, XSDSyntaxError
from repro.remodel.ast import EPSILON, Regex, alt, repeat, seq, sym
from repro.schema.model import AttributeDecl, ComplexType, Schema, TypeDef
from repro.schema.simple import BUILTINS, SimpleType, builtin, restrict
from repro.xmltree.dom import Document, Element
from repro.xmltree.parser import parse as parse_xml

_XSD_NAMESPACE_HINTS = ("xsd", "xs", "xschema")
_MAX_ALL_GROUP = 6  # permutation expansion cap for xsd:all


def parse_xsd(source: str, *, name: str = "") -> Schema:
    """Parse XML Schema source text into an abstract schema."""
    document = parse_xml(source)
    return schema_from_document(document, name=name)


def parse_xsd_file(path: str, *, name: str = "") -> Schema:
    with open(path, encoding="utf-8") as handle:
        return parse_xsd(handle.read(), name=name or path)


def schema_from_document(document: Document, *, name: str = "") -> Schema:
    return _XSDBuilder(document.root, name).build()


def _local(tag: str) -> str:
    """Local name of a possibly-prefixed tag."""
    return tag.rsplit(":", 1)[-1]


def _is_xsd(element: Element, local_name: str) -> bool:
    return _local(element.label) == local_name


class _XSDBuilder:
    def __init__(self, root: Element, name: str):
        if _local(root.label) != "schema":
            raise XSDSyntaxError(
                f"expected an xsd:schema document, found <{root.label}>"
            )
        self.root = root
        self.schema_name = name
        self.types: dict[str, TypeDef] = {}
        self.roots: dict[str, str] = {}
        #: global element name → type name (for ref= resolution).
        self.global_elements: dict[str, str] = {}
        #: element label → identity constraints declared on it.
        self.identity: dict[str, list] = {}
        #: substitution-group head → direct member labels.
        self.substitution_members: dict[str, list[str]] = {}
        #: global elements declared abstract (cannot appear themselves).
        self.abstract_elements: set[str] = set()
        self._anon_counter = itertools.count(1)

    # -- top level ----------------------------------------------------------

    def build(self) -> Schema:
        # Pass 1: named simple types (facet bases may be forward
        # references to builtins only, so one pass suffices for the
        # subset; user-type bases are resolved on demand in pass order).
        pending_complex: list[Element] = []
        pending_elements: list[Element] = []
        for child in self.root.child_elements():
            local = _local(child.label)
            if local == "simpleType":
                self._register_named_simple(child)
            elif local == "complexType":
                pending_complex.append(child)
            elif local == "element":
                pending_elements.append(child)
            elif local in ("annotation", "attribute", "attributeGroup",
                           "import", "include", "notation", "group"):
                if local == "group":
                    raise UnsupportedFeatureError(
                        "top-level xsd:group is not supported"
                    )
            else:
                raise XSDSyntaxError(
                    f"unsupported top-level construct <{child.label}>"
                )
        # Pass 2: named complex types — register names first so content
        # models can reference each other recursively, then fill in.
        declarations: dict[str, Element] = {}
        for element in pending_complex:
            type_name = element.attributes.get("name")
            if not type_name:
                raise XSDSyntaxError("top-level complexType requires a name")
            if type_name in declarations or type_name in self.types:
                raise XSDSyntaxError(f"duplicate type {type_name!r}")
            declarations[type_name] = element
        # Pass 3a: substitution groups and abstractness — these need only
        # the global elements' attributes, and content-model expansion
        # (pass 3b onwards) needs them in place.
        global_names = set()
        for element in pending_elements:
            label = element.attributes.get("name")
            if not label:
                raise XSDSyntaxError("global element requires name=")
            global_names.add(label)
        for element in pending_elements:
            label = element.attributes["name"]
            head = element.attributes.get("substitutionGroup")
            if head is not None:
                head = _local(head)
                if head not in global_names:
                    raise XSDSyntaxError(
                        f"element {label!r}: substitutionGroup head "
                        f"{head!r} is not a global element"
                    )
                self.substitution_members.setdefault(head, []).append(label)
            if element.attributes.get("abstract") in ("true", "1"):
                self.abstract_elements.add(label)
        # Pass 3b: global elements (may carry inline anonymous types).
        for element in pending_elements:
            self._register_global_element(element, declarations)
        for label in self.abstract_elements:
            self.roots.pop(label, None)  # abstract: never an instance
        for type_name, element in declarations.items():
            if type_name not in self.types:
                self.types[type_name] = self._build_complex(type_name, element,
                                                            declarations)
        return Schema(
            self.types,
            self.roots,
            name=self.schema_name,
            identity=self.identity,
        )

    # -- simple types -----------------------------------------------------------

    def _register_named_simple(self, element: Element) -> None:
        type_name = element.attributes.get("name")
        if not type_name:
            raise XSDSyntaxError("top-level simpleType requires a name")
        if type_name in self.types:
            raise XSDSyntaxError(f"duplicate type {type_name!r}")
        self.types[type_name] = self._build_simple(type_name, element)

    def _build_simple(self, type_name: str, element: Element) -> SimpleType:
        restriction = None
        for child in element.child_elements():
            local = _local(child.label)
            if local == "annotation":
                continue
            if local == "restriction":
                restriction = child
            elif local in ("list", "union"):
                raise UnsupportedFeatureError(
                    f"simpleType {type_name!r}: xsd:{local} is not supported"
                )
            else:
                raise XSDSyntaxError(
                    f"unexpected <{child.label}> in simpleType {type_name!r}"
                )
        if restriction is None:
            raise XSDSyntaxError(
                f"simpleType {type_name!r} requires an xsd:restriction"
            )
        base_name = restriction.attributes.get("base")
        if not base_name:
            raise XSDSyntaxError(
                f"restriction in simpleType {type_name!r} requires base="
            )
        base = self._resolve_simple(base_name)
        facets: dict[str, object] = {}
        enum_values: list[str] = []
        for facet in restriction.child_elements():
            local = _local(facet.label)
            if local == "annotation":
                continue
            value = facet.attributes.get("value")
            if value is None:
                raise XSDSyntaxError(f"facet {facet.label} requires value=")
            if local == "enumeration":
                enum_values.append(value)
            elif local in ("minInclusive", "maxInclusive",
                           "minExclusive", "maxExclusive"):
                key = {
                    "minInclusive": "min_inclusive",
                    "maxInclusive": "max_inclusive",
                    "minExclusive": "min_exclusive",
                    "maxExclusive": "max_exclusive",
                }[local]
                facets[key] = value
            elif local == "minLength":
                facets["min_length"] = int(value)
            elif local == "maxLength":
                facets["max_length"] = int(value)
            elif local == "length":
                facets["min_length"] = int(value)
                facets["max_length"] = int(value)
            elif local in ("whiteSpace", "pattern", "totalDigits",
                           "fractionDigits"):
                # Accepted but outside the reproduced facet algebra.
                continue
            else:
                raise XSDSyntaxError(f"unknown facet <{facet.label}>")
        if enum_values:
            facets["enumeration"] = frozenset(enum_values)
        return restrict(base, type_name, **facets)  # type: ignore[arg-type]

    def _resolve_simple(self, name: str) -> SimpleType:
        local = _local(name)
        prefixed = f"xsd:{local}"
        if prefixed in BUILTINS and (":" in name or local == name):
            return BUILTINS[prefixed]
        declaration = self.types.get(name)
        if isinstance(declaration, SimpleType):
            return declaration
        raise XSDSyntaxError(f"unknown simple type {name!r}")

    # -- complex types -------------------------------------------------------------

    def _build_complex(
        self,
        type_name: str,
        element: Element,
        declarations: dict[str, Element],
    ) -> ComplexType:
        if element.attributes.get("mixed") in ("true", "1"):
            raise UnsupportedFeatureError(
                f"complexType {type_name!r}: mixed content is outside the "
                "paper's structural model"
            )
        particle: Optional[Element] = None
        attributes: dict[str, AttributeDecl] = {}
        for child in element.child_elements():
            local = _local(child.label)
            if local == "annotation":
                continue
            if local == "attribute":
                declaration = self._build_attribute(child, type_name)
                if declaration is not None:
                    attributes[declaration.name] = declaration
                continue
            if local in ("attributeGroup", "anyAttribute"):
                raise UnsupportedFeatureError(
                    f"complexType {type_name!r}: xsd:{local} is not "
                    "supported"
                )
            if local in ("sequence", "choice", "all"):
                if particle is not None:
                    raise XSDSyntaxError(
                        f"complexType {type_name!r} has multiple particles"
                    )
                particle = child
            elif local in ("simpleContent", "complexContent"):
                raise UnsupportedFeatureError(
                    f"complexType {type_name!r}: xsd:{local} derivation is "
                    "not supported"
                )
            else:
                raise XSDSyntaxError(
                    f"unexpected <{child.label}> in complexType {type_name!r}"
                )
        child_types: dict[str, str] = {}
        if particle is None:
            content: Regex = EPSILON
        else:
            content = self._build_particle(
                particle, type_name, child_types, declarations
            )
        return ComplexType(type_name, content, child_types, attributes)

    def _build_attribute(
        self, element: Element, owner: str
    ) -> Optional[AttributeDecl]:
        """Parse one xsd:attribute declaration (None when prohibited)."""
        use = element.attributes.get("use", "optional")
        if use == "prohibited":
            return None
        if use not in ("optional", "required"):
            raise XSDSyntaxError(
                f"attribute in {owner!r}: unknown use={use!r}"
            )
        name = element.attributes.get("name")
        if not name:
            raise XSDSyntaxError(
                f"attribute in {owner!r} requires name= "
                "(ref= is not supported)"
            )
        type_attr = element.attributes.get("type")
        inline = [
            child
            for child in element.child_elements()
            if _local(child.label) == "simpleType"
        ]
        if type_attr and inline:
            raise XSDSyntaxError(
                f"attribute {name!r} in {owner!r} has both type= and an "
                "inline simpleType"
            )
        if inline:
            anon_name = f"#anon:{owner}.@{name}"
            self.types[anon_name] = self._build_simple(anon_name, inline[0])
            type_name = anon_name
        elif type_attr:
            type_name = self._type_reference(type_attr, {})
            if not isinstance(self.types.get(type_name), SimpleType):
                raise XSDSyntaxError(
                    f"attribute {name!r} in {owner!r} must have a simple "
                    f"type, not {type_attr!r}"
                )
        else:
            self.types.setdefault("xsd:string", builtin("string"))
            type_name = "xsd:string"
        return AttributeDecl(name, type_name, required=use == "required")

    def _build_particle(
        self,
        element: Element,
        owner: str,
        child_types: dict[str, str],
        declarations: dict[str, Element],
    ) -> Regex:
        local = _local(element.label)
        low, high = self._occurs(element)
        if local == "element":
            ref = element.attributes.get("ref")
            if ref is not None and (
                _local(ref) in self.substitution_members
                or _local(ref) in self.abstract_elements
            ):
                return self._substitution_particle(
                    _local(ref), owner, child_types, low, high
                )
            label, type_name = self._local_element(element, owner, declarations)
            self._bind_child(owner, child_types, label, type_name)
            return repeat(sym(label), low, high)
        if local in ("sequence", "choice"):
            parts = [
                self._build_particle(child, owner, child_types, declarations)
                for child in element.child_elements()
                if _local(child.label) != "annotation"
            ]
            if not parts:
                inner: Regex = EPSILON
            elif local == "sequence":
                inner = seq(*parts)
            else:
                inner = alt(*parts)
            return repeat(inner, low, high)
        if local == "all":
            return repeat(
                self._build_all(element, owner, child_types, declarations),
                low,
                high,
            )
        if local == "any":
            raise UnsupportedFeatureError(
                f"complexType {owner!r}: xsd:any wildcards are not supported"
            )
        if local == "group":
            raise UnsupportedFeatureError(
                f"complexType {owner!r}: xsd:group references are not "
                "supported"
            )
        raise XSDSyntaxError(f"unexpected particle <{element.label}>")

    def _bind_child(
        self,
        owner: str,
        child_types: dict[str, str],
        label: str,
        type_name: str,
    ) -> None:
        existing = child_types.get(label)
        if existing is not None and existing != type_name:
            raise XSDSyntaxError(
                f"complexType {owner!r}: label {label!r} is declared "
                f"with two types ({existing!r} and {type_name!r}) — "
                "XML Schema requires consistent declarations"
            )
        child_types[label] = type_name

    def _substitution_particle(
        self,
        head: str,
        owner: str,
        child_types: dict[str, str],
        low: int,
        high: Optional[int],
    ) -> Regex:
        """Expand a reference to a substitution-group head into a choice
        over the head (unless abstract) and its transitive members, each
        with its own declared type — the paper's "substitution groups
        can be integrated into our model" realized as a content-model
        rewrite."""
        labels = self._substitutables(head)
        if not labels:
            raise XSDSyntaxError(
                f"complexType {owner!r}: abstract head {head!r} has no "
                "substitutable members but is required"
            )
        for label in labels:
            type_name = self.global_elements.get(label)
            if type_name is None:
                raise XSDSyntaxError(
                    f"substitution member {label!r} resolved before its "
                    "declaration"
                )
            self._bind_child(owner, child_types, label, type_name)
        choice = (
            alt(*(sym(label) for label in labels))
            if len(labels) > 1
            else sym(labels[0])
        )
        return repeat(choice, low, high)

    def _substitutables(self, head: str) -> list[str]:
        """The head (if concrete) plus its transitive members, in
        declaration order, abstract members excluded."""
        ordered: list[str] = []
        stack = [head]
        seen = set()
        while stack:
            label = stack.pop(0)
            if label in seen:
                continue
            seen.add(label)
            if label not in self.abstract_elements:
                ordered.append(label)
            stack.extend(self.substitution_members.get(label, ()))
        return ordered

    def _build_all(
        self,
        element: Element,
        owner: str,
        child_types: dict[str, str],
        declarations: dict[str, Element],
    ) -> Regex:
        """Expand an ``xsd:all`` group into a choice of permutations.

        Exact for groups of up to ``_MAX_ALL_GROUP`` members (beyond
        that the expansion explodes factorially and we refuse).
        """
        members: list[tuple[Regex, bool]] = []  # (symbol, optional?)
        for child in element.child_elements():
            local = _local(child.label)
            if local == "annotation":
                continue
            if local != "element":
                raise XSDSyntaxError(
                    f"xsd:all in {owner!r} may contain only local elements"
                )
            low, high = self._occurs(child)
            if high not in (1,) or low not in (0, 1):
                raise UnsupportedFeatureError(
                    f"xsd:all in {owner!r}: members must have "
                    "minOccurs 0/1 and maxOccurs 1"
                )
            label, type_name = self._local_element(child, owner, declarations)
            child_types[label] = type_name
            members.append((sym(label), low == 0))
        if len(members) > _MAX_ALL_GROUP:
            raise UnsupportedFeatureError(
                f"xsd:all in {owner!r} has {len(members)} members; "
                f"expansion is capped at {_MAX_ALL_GROUP}"
            )
        if not members:
            return EPSILON
        alternatives: list[Regex] = []
        for ordering in itertools.permutations(range(len(members))):
            parts = [
                repeat(members[i][0], 0 if members[i][1] else 1, 1)
                for i in ordering
            ]
            alternatives.append(seq(*parts))
        return alt(*alternatives) if len(alternatives) > 1 else alternatives[0]

    # -- element declarations ----------------------------------------------------

    def _occurs(self, element: Element) -> tuple[int, Optional[int]]:
        low = int(element.attributes.get("minOccurs", "1"))
        high_text = element.attributes.get("maxOccurs", "1")
        high = None if high_text == "unbounded" else int(high_text)
        return low, high

    def _local_element(
        self,
        element: Element,
        owner: str,
        declarations: dict[str, Element],
    ) -> tuple[str, str]:
        ref = element.attributes.get("ref")
        if ref is not None:
            label = _local(ref)
            type_name = self.global_elements.get(label)
            if type_name is None:
                raise XSDSyntaxError(
                    f"element ref {ref!r} in {owner!r}: no such global "
                    "element"
                )
            return label, type_name
        label = element.attributes.get("name")
        if not label:
            raise XSDSyntaxError(f"local element in {owner!r} requires name=")
        self._collect_identity(element, label)
        return label, self._element_type(element, f"{owner}.{label}",
                                         declarations)

    def _element_type(
        self,
        element: Element,
        context: str,
        declarations: dict[str, Element],
    ) -> str:
        """Resolve an element declaration's type: type= attribute, inline
        anonymous type, or the default (unconstrained text)."""
        type_attr = element.attributes.get("type")
        inline = [
            child
            for child in element.child_elements()
            if _local(child.label) in ("complexType", "simpleType")
        ]
        if type_attr and inline:
            raise XSDSyntaxError(
                f"element {context!r} has both type= and an inline type"
            )
        if type_attr:
            return self._type_reference(type_attr, declarations)
        if inline:
            anon = inline[0]
            anon_name = f"#anon:{context}"
            if _local(anon.label) == "simpleType":
                self.types[anon_name] = self._build_simple(anon_name, anon)
            else:
                # Register eagerly so recursive references resolve.
                self.types[anon_name] = self._build_complex(
                    anon_name, anon, declarations
                )
            return anon_name
        # No type information: xs:anyType would be the strict answer; the
        # closest model in the subset is unconstrained text.
        default_name = "xsd:string"
        self.types.setdefault(default_name, builtin("string"))
        return default_name

    def _type_reference(
        self, name: str, declarations: dict[str, Element]
    ) -> str:
        local = _local(name)
        if ":" in name and f"xsd:{local}" in BUILTINS:
            canonical = f"xsd:{local}"
            self.types.setdefault(canonical, BUILTINS[canonical])
            return canonical
        if name in self.types:
            return name
        if name in declarations:
            # Forward reference to a named complex type: defer building
            # (pass 3 in build() completes all pending declarations;
            # deferral also breaks mutual-recursion cycles).
            return name
        if f"xsd:{name}" in BUILTINS:
            canonical = f"xsd:{name}"
            self.types.setdefault(canonical, BUILTINS[canonical])
            return canonical
        raise XSDSyntaxError(f"unknown type reference {name!r}")

    def _register_global_element(
        self, element: Element, declarations: dict[str, Element]
    ) -> None:
        label = element.attributes.get("name")
        if not label:
            raise XSDSyntaxError("global element requires name=")
        if label in self.global_elements:
            raise XSDSyntaxError(f"duplicate global element {label!r}")
        type_name = self._element_type(element, label, declarations)
        self.global_elements[label] = type_name
        self.roots[label] = type_name
        self._collect_identity(element, label)

    def _collect_identity(self, element: Element, label: str) -> None:
        """Parse xsd:key / xsd:unique / xsd:keyref children (the
        paper's future-work extension; see repro.schema.identity)."""
        from repro.schema.identity import constraint as make_constraint

        for child in element.child_elements():
            kind = _local(child.label)
            if kind not in ("key", "unique", "keyref"):
                continue
            name = child.attributes.get("name")
            if not name:
                raise XSDSyntaxError(f"xsd:{kind} requires name=")
            selector = None
            fields: list[str] = []
            for part in child.child_elements():
                part_kind = _local(part.label)
                if part_kind == "annotation":
                    continue
                xpath = part.attributes.get("xpath")
                if xpath is None:
                    raise XSDSyntaxError(
                        f"xsd:{part_kind} in {name!r} requires xpath="
                    )
                if part_kind == "selector":
                    selector = xpath
                elif part_kind == "field":
                    fields.append(xpath)
                else:
                    raise XSDSyntaxError(
                        f"unexpected <{part.label}> in xsd:{kind} {name!r}"
                    )
            if selector is None:
                raise XSDSyntaxError(f"xsd:{kind} {name!r} needs a selector")
            refer = child.attributes.get("refer")
            self.identity.setdefault(label, []).append(
                make_constraint(
                    name,
                    kind,
                    selector,
                    fields,
                    refer=_local(refer) if refer else None,
                )
            )
