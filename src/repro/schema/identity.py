"""Identity constraints: ``xsd:key`` / ``xsd:keyref`` / ``xsd:unique``.

The paper defers identity constraints ("We are currently extending our
algorithms to handle key constraints", Section 7); this module is that
extension.  It implements the XSD identity-constraint model over the
restricted XPath subset the XSD specification itself prescribes:

* **selector** paths: relative child paths (``item``, ``./a/b``), the
  descendant prefix ``.//``, ``*`` wildcards, and ``|`` unions;
* **field** paths: a selector path optionally ending in ``@attribute``,
  or ``.`` for the selected node's own text.

A constraint is *declared* on an element (in XSD, nested in an
``xsd:element``); it is *enforced* on every instance of that element:

* ``unique`` — no two selected nodes share the same field tuple (nodes
  with an absent field are exempt);
* ``key`` — like unique, but every field must be present;
* ``keyref`` — every selected node's field tuple must appear in the
  referenced key's tuple set *within the same declaring instance*.

Checking is a standalone pass (:func:`check_identity`) so the
structural cast validators remain exactly the paper's algorithms; a
document that passes the structural cast still needs this pass when the
target schema declares constraints.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.result import ValidationReport
from repro.errors import SchemaError
from repro.xmltree.dom import Document, Element


# -- the XPath subset ----------------------------------------------------------

_NAME_RE = re.compile(r"[A-Za-z_][\w.:-]*\Z")

@dataclass(frozen=True)
class _Step:
    name: str  # element name or "*"


@dataclass(frozen=True)
class _Path:
    """One alternative of a selector: optional descendant prefix plus
    child steps."""

    descendant: bool
    steps: tuple[_Step, ...]


@dataclass(frozen=True)
class Selector:
    """A parsed selector xpath (union of simple paths)."""

    source: str
    paths: tuple[_Path, ...]

    def select(self, context: Element) -> Iterator[Element]:
        seen: set[int] = set()
        for path in self.paths:
            for node in _walk_path(context, path):
                if id(node) not in seen:
                    seen.add(id(node))
                    yield node


@dataclass(frozen=True)
class FieldPath:
    """A parsed field xpath: a selector plus an optional @attribute or
    self (``.``) terminal."""

    source: str
    selector: Optional[Selector]  # None = the context node itself
    attribute: Optional[str]

    def evaluate(self, context: Element) -> Optional[str]:
        """The field value at ``context``: None when absent, and a
        :class:`SchemaError` if multiple nodes match (XSD requires at
        most one)."""
        if self.selector is None:
            nodes = [context]
        else:
            nodes = list(self.selector.select(context))
        if not nodes:
            return None
        if len(nodes) > 1:
            raise SchemaError(
                f"field {self.source!r} matches {len(nodes)} nodes; "
                "identity fields must be unique"
            )
        node = nodes[0]
        if self.attribute is not None:
            return node.attributes.get(self.attribute)
        return node.text()


def _walk_path(context: Element, path: _Path) -> Iterator[Element]:
    # `.//a/b` starts the child steps at the context node *and* every
    # descendant; a plain `a/b` starts at the context node only.
    current: list[Element] = (
        list(context.iter()) if path.descendant else [context]
    )
    for step in path.steps:
        following: list[Element] = []
        for node in current:
            for child in node.child_elements():
                if step.name == "*" or child.label == step.name:
                    following.append(child)
        current = following
    return iter(current)


def parse_selector(text: str) -> Selector:
    """Parse a selector xpath (``a/b | .//c``)."""
    paths = []
    for branch in text.split("|"):
        branch = branch.strip()
        if not branch:
            raise SchemaError(f"empty branch in selector {text!r}")
        descendant = False
        if branch.startswith(".//"):
            descendant = True
            branch = branch[3:]
        elif branch.startswith("./"):
            branch = branch[2:]
        steps = []
        for raw in branch.split("/"):
            raw = raw.strip()
            if raw == "" or raw == ".":
                continue
            if raw.startswith("@"):
                raise SchemaError(
                    f"attributes are not allowed in selectors: {text!r}"
                )
            if raw != "*" and not _NAME_RE.match(raw):
                raise SchemaError(f"unsupported selector step {raw!r}")
            steps.append(_Step(raw))
        if not steps:
            raise SchemaError(
                f"selector branch selects the context node itself: {text!r}"
            )
        paths.append(_Path(descendant, tuple(steps)))
    return Selector(text, tuple(paths))


def parse_field(text: str) -> FieldPath:
    """Parse a field xpath (``price``, ``./@id``, ``a/b/@ref``, ``.``)."""
    stripped = text.strip()
    attribute: Optional[str] = None
    body = stripped
    if "@" in stripped:
        prefix, _, attr = stripped.rpartition("@")
        attribute = attr.strip()
        if not attribute:
            raise SchemaError(f"empty attribute name in field {text!r}")
        body = prefix.rstrip("/").strip()
    if body in ("", "."):
        return FieldPath(text, None, attribute)
    if body.startswith("./") and body[2:] in ("", "."):
        return FieldPath(text, None, attribute)
    return FieldPath(text, parse_selector(body), attribute)


# -- constraints -------------------------------------------------------------------

@dataclass(frozen=True)
class IdentityConstraint:
    """One key/unique/keyref declaration attached to an element label."""

    name: str
    kind: str                    # "key" | "unique" | "keyref"
    selector: Selector
    fields: tuple[FieldPath, ...]
    refer: Optional[str] = None  # keyref: the referenced key's name

    def __post_init__(self) -> None:
        if self.kind not in ("key", "unique", "keyref"):
            raise SchemaError(f"unknown constraint kind {self.kind!r}")
        if self.kind == "keyref" and not self.refer:
            raise SchemaError(f"keyref {self.name!r} requires refer=")
        if not self.fields:
            raise SchemaError(f"constraint {self.name!r} needs a field")


def constraint(
    name: str,
    kind: str,
    selector: str,
    fields: Sequence[str],
    *,
    refer: Optional[str] = None,
) -> IdentityConstraint:
    """Convenience constructor from xpath source text."""
    return IdentityConstraint(
        name=name,
        kind=kind,
        selector=parse_selector(selector),
        fields=tuple(parse_field(f) for f in fields),
        refer=refer,
    )


#: Constraint sets are grouped by the declaring element's label.
ConstraintIndex = dict[str, list[IdentityConstraint]]


# -- checking --------------------------------------------------------------------

def check_identity(
    constraints: ConstraintIndex, document: Document
) -> ValidationReport:
    """Verify every identity constraint over the document.

    Constraints attach to element labels; each instance of a declaring
    label forms its own scope, exactly as XSD scopes constraints to the
    declaring element.
    """
    for label, declared in constraints.items():
        keys = [c for c in declared if c.kind in ("key", "unique")]
        refs = [c for c in declared if c.kind == "keyref"]
        for scope in document.elements_with_label(label):
            key_tables: dict[str, set[tuple[str, ...]]] = {}
            for declaration in keys:
                report = _check_key(declaration, scope, key_tables)
                if not report.valid:
                    return report
            for declaration in refs:
                report = _check_keyref(declaration, scope, key_tables)
                if not report.valid:
                    return report
    return ValidationReport.success()


def _tuple_of(
    declaration: IdentityConstraint, node: Element
) -> tuple[Optional[str], ...]:
    return tuple(field.evaluate(node) for field in declaration.fields)


def _check_key(
    declaration: IdentityConstraint,
    scope: Element,
    key_tables: dict[str, set[tuple[str, ...]]],
) -> ValidationReport:
    seen: set[tuple[str, ...]] = set()
    for node in declaration.selector.select(scope):
        values = _tuple_of(declaration, node)
        if any(value is None for value in values):
            if declaration.kind == "key":
                return ValidationReport.failure(
                    f"key {declaration.name!r}: missing field on "
                    f"<{node.label}>",
                    path=str(node.dewey()),
                )
            continue  # unique: absent fields are exempt
        values = tuple(v for v in values if v is not None)
        if values in seen:
            return ValidationReport.failure(
                f"{declaration.kind} {declaration.name!r}: duplicate "
                f"value {values!r}",
                path=str(node.dewey()),
            )
        seen.add(values)
    if declaration.kind == "key":
        key_tables[declaration.name] = seen
    return ValidationReport.success()


def validate_with_constraints(schema, document: Document) -> ValidationReport:
    """Structural validation plus identity-constraint checking.

    Equivalent to :func:`repro.core.validator.validate_document`
    followed by :func:`check_identity` with the schema's declared
    constraints; the structural report's statistics are preserved.
    """
    from repro.core.validator import validate_document

    report = validate_document(schema, document)
    if not report.valid or not schema.identity:
        return report
    identity_report = check_identity(schema.identity, document)
    if not identity_report.valid:
        identity_report.stats = report.stats
        return identity_report
    return report


def _check_keyref(
    declaration: IdentityConstraint,
    scope: Element,
    key_tables: dict[str, set[tuple[str, ...]]],
) -> ValidationReport:
    assert declaration.refer is not None
    table = key_tables.get(declaration.refer)
    if table is None:
        return ValidationReport.failure(
            f"keyref {declaration.name!r} refers to unknown or "
            f"out-of-scope key {declaration.refer!r}",
            path=str(scope.dewey()),
        )
    for node in declaration.selector.select(scope):
        values = _tuple_of(declaration, node)
        if any(value is None for value in values):
            continue  # absent fields: no reference made
        if tuple(values) not in table:
            return ValidationReport.failure(
                f"keyref {declaration.name!r}: {values!r} does not "
                f"match any {declaration.refer!r} key",
                path=str(node.dewey()),
            )
    return ValidationReport.success()
