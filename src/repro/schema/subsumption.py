"""The subsumption relation ``R_sub`` (Definition 4 / Theorem 1).

``(τ, τ') ∈ R_sub`` iff every tree valid under source type τ is valid
under target type τ' — the information that lets the tree cast validator
skip whole subtrees.  The computation is the paper's greatest-fixpoint
refinement:

1. start from all candidate pairs of like kind, with simple pairs
   filtered by facet implication (the bootstrap the paper sketches) and
   complex pairs by content-language inclusion ``L(regexp_τ) ⊆
   L(regexp_τ')``;
2. repeatedly remove complex pairs with a child label whose assigned
   type pair has been removed;
3. stop at the fixpoint.

Step 2 uses a worklist over reverse dependencies, so each pair is
re-examined only when one of its child pairs falls out — O(edges)
overall rather than O(iterations × pairs).

The child-label domain is the *useful* symbols of the source content
model (labels that occur in at least one word): a label that can never
appear in a valid child sequence cannot break subsumption, and the
paper's definition implicitly assumes such vacuous labels are absent
(its normalized, productive schemas).
"""

from __future__ import annotations

from collections import deque

from repro.automata.dfa import harmonize
from repro.schema.model import ComplexType, Schema, SimpleType


def _attributes_subsumed(
    source: Schema,
    src_decl: ComplexType,
    target: Schema,
    tgt_decl: ComplexType,
) -> bool:
    """Attribute extension of Definition 4: every attribute assignment
    valid under τ must be valid under τ'.

    Requires every τ-declared attribute to be declared in τ' with a
    subsuming value type, and every τ'-required attribute to be
    τ-required (so it is guaranteed present).
    """
    for name, attr in src_decl.attributes.items():
        counterpart = tgt_decl.attributes.get(name)
        if counterpart is None:
            return False
        src_type = source.type(attr.type_name)
        tgt_type = target.type(counterpart.type_name)
        assert isinstance(src_type, SimpleType)
        assert isinstance(tgt_type, SimpleType)
        if not src_type.is_subsumed_by(tgt_type):
            return False
    for name, attr in tgt_decl.attributes.items():
        if attr.required:
            counterpart = src_decl.attributes.get(name)
            if counterpart is None or not counterpart.required:
                return False
    return True


def compute_subsumption(source: Schema, target: Schema) -> frozenset[tuple[str, str]]:
    """All pairs ``(τ, τ')`` with ``valid(τ) ⊆ valid(τ')``.

    τ ranges over ``source`` types and τ' over ``target`` types; the two
    schemas may be (and usually are) different objects.
    """
    survivors: set[tuple[str, str]] = set()
    for tau, src_decl in source.types.items():
        for tau_p, tgt_decl in target.types.items():
            if isinstance(src_decl, SimpleType) and isinstance(
                tgt_decl, SimpleType
            ):
                if src_decl.is_subsumed_by(tgt_decl):
                    survivors.add((tau, tau_p))
            elif isinstance(src_decl, ComplexType) and isinstance(
                tgt_decl, ComplexType
            ):
                if not _attributes_subsumed(source, src_decl, target,
                                            tgt_decl):
                    continue
                a, b = harmonize(
                    source.content_dfa(tau), target.content_dfa(tau_p)
                )
                if a.is_subset_of(b):
                    survivors.add((tau, tau_p))

    # Reverse dependency index: child pair → complex pairs that need it.
    dependents: dict[tuple[str, str], list[tuple[str, str]]] = {}
    fragile: deque[tuple[str, str]] = deque()
    for pair in list(survivors):
        tau, tau_p = pair
        src_decl = source.types[tau]
        if not isinstance(src_decl, ComplexType):
            continue
        tgt_decl = target.types[tau_p]
        assert isinstance(tgt_decl, ComplexType)
        broken = False
        for label in source.useful_symbols(tau):
            child = src_decl.child_types[label]
            target_child = tgt_decl.child_types.get(label)
            if target_child is None:
                # A useful source label must be a target label too when
                # the languages are included; defensive removal.
                broken = True
                break
            child_pair = (child, target_child)
            if child_pair not in survivors:
                broken = True
                break
            dependents.setdefault(child_pair, []).append(pair)
        if broken:
            fragile.append(pair)

    while fragile:
        pair = fragile.popleft()
        if pair not in survivors:
            continue
        survivors.discard(pair)
        for dependent in dependents.get(pair, ()):
            if dependent in survivors:
                fragile.append(dependent)
    return frozenset(survivors)
