"""Schema cast validation for strings (Section 4.2/4.3).

:class:`StringCastValidator` preprocesses a *source* DFA ``a`` and a
*target* DFA ``b`` once, then answers, for strings promised to be in
``L(a)``:

* :meth:`validate` — is the (unmodified) string in ``L(b)``?  Scanned
  with the pair immediate decision automaton ``c_immed``; optimal in the
  number of symbols examined (Proposition 3).
* :meth:`validate_modified` — after edits, is the new string in
  ``L(b)``?  Implements the forward algorithm of Section 4.3 (modified
  prefix via ``b_immed``, unchanged suffix via ``c_immed`` from the pair
  state) and the symmetric reverse-automaton variant for edits clustered
  at the end, choosing whichever scans less (``strategy="auto"``).

Counters on the returned :class:`CastScanResult` record how many symbols
each automaton consumed, which the benchmark harness aggregates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.automata.compiled import CompiledImmediate, SymbolTable
from repro.automata.dfa import DFA, harmonize
from repro.automata.edits import common_affix_lengths
from repro.automata.immediate import (
    Decision,
    ImmediateDecisionAutomaton,
    ScanResult,
)
from repro.automata.nfa import reverse_dfa


class Strategy(enum.Enum):
    """Scanning strategies for the with-modifications cast."""

    FORWARD = "forward"
    REVERSE = "reverse"
    PLAIN = "plain"
    AUTO = "auto"


@dataclass(frozen=True)
class CastScanResult:
    """Outcome of a string cast check.

    Attributes:
        accepted: is the string in the target language?
        decision: how the deciding automaton terminated.
        target_symbols: symbols scanned on target-only automata (b_immed).
        pair_symbols: symbols scanned on the pair automaton (c_immed).
        source_symbols: symbols of the *original* string re-run on the
            source automaton to recover the junction state (bookkeeping
            cost; zero when the caller supplies the state).
        strategy: the strategy actually used.
    """

    accepted: bool
    decision: Decision
    target_symbols: int = 0
    pair_symbols: int = 0
    source_symbols: int = 0
    strategy: Strategy = Strategy.FORWARD

    @property
    def symbols_scanned(self) -> int:
        """Total symbols examined on the *modified/current* string."""
        return self.target_symbols + self.pair_symbols


class StringCastValidator:
    """Preprocessed source/target DFA pair for repeated string casts."""

    def __init__(
        self,
        source: DFA,
        target: DFA,
        *,
        symbols: Optional[SymbolTable] = None,
    ):
        self.source, self.target = harmonize(source, target)
        #: Definition 7 immediate decision automaton on the intersection.
        self.c_immed = ImmediateDecisionAutomaton.from_pair(
            self.source, self.target
        )
        #: Definition 6 automaton for scanning freshly modified regions.
        self.b_immed = ImmediateDecisionAutomaton.from_dfa(self.target)
        #: True when the initial pair state is already subsumed — every
        #: source-valid string is target-valid, no scanning ever needed.
        self.always_accepts = self.c_immed.dfa.start in self.c_immed.ia
        #: True when the initial pair state is already dead — no
        #: source-valid string can be target-valid.
        self.never_accepts = self.c_immed.dfa.start in self.c_immed.ir
        #: Shared interning table and dense-table compilations of both
        #: immediate automata; ``None`` when no table was supplied (the
        #: standalone construction — callers then scan the dict rows).
        self.symbols = symbols
        self.c_immed_compiled: Optional[CompiledImmediate] = None
        self.b_immed_compiled: Optional[CompiledImmediate] = None
        if symbols is not None:
            self.c_immed_compiled = CompiledImmediate.from_immediate(
                self.c_immed, symbols
            )
            self.b_immed_compiled = CompiledImmediate.from_immediate(
                self.b_immed, symbols
            )
        self._reverse: Optional[_ReverseMachinery] = None

    # -- lazily built reverse machinery -------------------------------------

    @property
    def reverse_machinery(self) -> "_ReverseMachinery":
        """Reverse-automaton pipeline, built on first use (footnote 3:
        the reverse of a DFA may be nondeterministic, so both reverses
        are determinized once here)."""
        if self._reverse is None:
            rev_source = reverse_dfa(self.source)
            rev_target = reverse_dfa(self.target)
            self._reverse = _ReverseMachinery(
                rev_source,
                rev_target,
                ImmediateDecisionAutomaton.from_pair(rev_source, rev_target),
                ImmediateDecisionAutomaton.from_dfa(rev_target),
            )
        return self._reverse

    # -- Section 4.2: no modifications ---------------------------------------

    def validate(self, word: Sequence[str]) -> CastScanResult:
        """Decide ``word ∈ L(target)`` given the promise ``word ∈ L(source)``.

        Runs ``c_immed`` from its start state; early accept on subsumed
        pair states, early reject on dead pair states.
        """
        result = self.c_immed.scan(word)
        return CastScanResult(
            accepted=result.accepted,
            decision=result.decision,
            pair_symbols=result.symbols_scanned,
            strategy=Strategy.FORWARD,
        )

    # -- Section 4.3: with modifications --------------------------------------

    def validate_modified(
        self,
        original: Sequence[str],
        modified: Sequence[str],
        *,
        strategy: Strategy = Strategy.AUTO,
        prefix: Optional[int] = None,
        suffix: Optional[int] = None,
    ) -> CastScanResult:
        """Decide ``modified ∈ L(target)`` given ``original ∈ L(source)``.

        ``prefix``/``suffix`` are the untouched common prefix/suffix
        lengths if the caller tracked them during editing (e.g. via
        :class:`~repro.automata.edits.EditScript`); otherwise they are
        recomputed from the two strings.
        """
        if prefix is None or suffix is None:
            computed_prefix, computed_suffix = common_affix_lengths(
                original, modified
            )
            prefix = computed_prefix if prefix is None else prefix
            suffix = computed_suffix if suffix is None else suffix

        if strategy is Strategy.AUTO:
            strategy = self._choose_strategy(
                len(original), len(modified), prefix, suffix
            )
        if strategy is Strategy.FORWARD:
            return self._forward(original, modified, suffix)
        if strategy is Strategy.REVERSE:
            return self._reverse_scan(original, modified, prefix)
        return self._plain(modified)

    @staticmethod
    def _choose_strategy(
        original_len: int, modified_len: int, prefix: int, suffix: int
    ) -> Strategy:
        """Pick the direction that must rescan fewer modified symbols.

        Forward rescans ``modified_len - suffix`` symbols before reaching
        reusable territory; reverse rescans ``modified_len - prefix``.
        When neither affix is usable, a plain target scan avoids the
        source-automaton bookkeeping entirely (the paper: "in case there
        is no advantage ... simply scan with b_immed").
        """
        if suffix == 0 and prefix == 0:
            return Strategy.PLAIN
        if suffix >= prefix:
            return Strategy.FORWARD
        return Strategy.REVERSE

    def _plain(self, modified: Sequence[str]) -> CastScanResult:
        result = self.b_immed.scan(modified)
        return CastScanResult(
            accepted=result.accepted,
            decision=result.decision,
            target_symbols=result.symbols_scanned,
            strategy=Strategy.PLAIN,
        )

    def _forward(
        self,
        original: Sequence[str],
        modified: Sequence[str],
        suffix: int,
    ) -> CastScanResult:
        """Steps 1–4 of Section 4.3, scanning left to right."""
        junction = len(modified) - suffix  # first index of the shared tail
        head = modified[:junction]
        head_result = self.b_immed.scan(head)
        if head_result.early or not suffix:
            # Decided on the modified region alone, or nothing reusable:
            # when the head scan ran to completion with no suffix, the
            # at-end verdict already covers the whole string.
            return CastScanResult(
                accepted=head_result.accepted,
                decision=head_result.decision,
                target_symbols=head_result.symbols_scanned,
                strategy=Strategy.FORWARD,
            )
        # Replay the original's head on the source automaton to find q_a.
        source_head = len(original) - suffix
        q_a = self.source.run(original[:source_head])
        start = self.c_immed.pair_state(q_a, head_result.state)
        tail_result = self.c_immed.scan(modified[junction:], start=start)
        return CastScanResult(
            accepted=tail_result.accepted,
            decision=tail_result.decision,
            target_symbols=head_result.symbols_scanned,
            pair_symbols=tail_result.symbols_scanned,
            source_symbols=source_head,
            strategy=Strategy.FORWARD,
        )

    def _reverse_scan(
        self,
        original: Sequence[str],
        modified: Sequence[str],
        prefix: int,
    ) -> CastScanResult:
        """The symmetric algorithm on the reverse automata: the string
        belongs to L(b) iff its reversal belongs to L(reverse(b))."""
        machinery = self.reverse_machinery
        head = list(reversed(modified[prefix:]))  # modified tail, reversed
        head_result = machinery.target_immed.scan(head)
        if head_result.early or not prefix:
            return CastScanResult(
                accepted=head_result.accepted,
                decision=head_result.decision,
                target_symbols=head_result.symbols_scanned,
                strategy=Strategy.REVERSE,
            )
        source_tail = list(reversed(original[prefix:]))
        q_a = machinery.source.run(source_tail)
        start = machinery.pair_immed.pair_state(q_a, head_result.state)
        shared = list(reversed(modified[:prefix]))
        tail_result = machinery.pair_immed.scan(shared, start=start)
        return CastScanResult(
            accepted=tail_result.accepted,
            decision=tail_result.decision,
            target_symbols=head_result.symbols_scanned,
            pair_symbols=tail_result.symbols_scanned,
            source_symbols=len(source_tail),
            strategy=Strategy.REVERSE,
        )


@dataclass
class _ReverseMachinery:
    """Determinized reverse automata and their immediate derivations."""

    source: DFA
    target: DFA
    pair_immed: ImmediateDecisionAutomaton
    target_immed: ImmediateDecisionAutomaton


class StringUpdateRevalidator(StringCastValidator):
    """The single-schema update problem of Section 4.3 (``b = a``).

    After edits, the unchanged suffix re-enters the intersection
    automaton on the diagonal ``(q, q)``, every diagonal state being in
    ``IA`` (``L(q) ⊆ L(q)``) — so the scan accepts the moment the target
    run re-synchronizes with the original's state at the junction.
    """

    def __init__(self, dfa: DFA):
        super().__init__(dfa, dfa)

    def revalidate(
        self,
        original: Sequence[str],
        modified: Sequence[str],
        *,
        strategy: Strategy = Strategy.AUTO,
    ) -> CastScanResult:
        return self.validate_modified(original, modified, strategy=strategy)
