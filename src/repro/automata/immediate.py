"""Immediate decision automata (Section 4 of the paper).

An immediate decision automaton is a DFA extended with two state sets:

* ``IA`` (immediate accept): reaching such a state on a *strict prefix*
  of the input decides acceptance without scanning the rest;
* ``IR`` (immediate reject): dually for rejection.

Two derivations are implemented:

* :meth:`ImmediateDecisionAutomaton.from_dfa` — Definition 6:
  ``IA = {q | L(q) = Σ*}``, ``IR = {q | L(q) = ∅}``.  Sound for any
  input string.
* :meth:`ImmediateDecisionAutomaton.from_pair` — Definitions 7/8: the
  automaton is the **full** product of a source DFA ``a`` and a target
  DFA ``b`` (every pair ``(q_a, q_b)`` is a state, so the
  with-modifications scan can start anywhere), with
  ``IA = {(q_a,q_b) | L(q_a) ⊆ L(q_b)}`` computed by the linear-time
  reverse reachability of Definition 8, and ``IR`` the states from which
  no final state is reachable.  Decisions are sound only for inputs whose
  remaining suffix is guaranteed accepted by ``a`` from ``q_a`` — exactly
  the schema-cast promise ``s ∈ L(a)``.

Both constructions preserve the language of the underlying DFA
(Theorem 3); the pair construction is decision-optimal (Proposition 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.automata.dfa import DFA, harmonize
from repro.errors import StateBudgetExceededError
from repro.guards import state_budget


class Decision(enum.Enum):
    """How a scan terminated."""

    IMMEDIATE_ACCEPT = "immediate-accept"
    IMMEDIATE_REJECT = "immediate-reject"
    ACCEPT_AT_END = "accept-at-end"
    REJECT_AT_END = "reject-at-end"


@dataclass(frozen=True)
class ScanResult:
    """Outcome of scanning a word with an immediate decision automaton.

    Attributes:
        accepted: final verdict.
        symbols_scanned: symbols consumed before the verdict.
        decision: whether the verdict was early (IA/IR) or at end-of-input.
        state: the state in which the scan stopped.
    """

    accepted: bool
    symbols_scanned: int
    decision: Decision
    state: int

    @property
    def early(self) -> bool:
        return self.decision in (
            Decision.IMMEDIATE_ACCEPT,
            Decision.IMMEDIATE_REJECT,
        )


class ImmediateDecisionAutomaton:
    """A complete DFA with immediate-accept and immediate-reject states."""

    __slots__ = ("dfa", "ia", "ir", "_pair_shape")

    def __init__(
        self,
        dfa: DFA,
        ia: Iterable[int],
        ir: Iterable[int],
        _pair_shape: Optional[tuple[int, int]] = None,
    ):
        self.dfa = dfa
        self.ia = frozenset(ia)
        self.ir = frozenset(ir)
        if self.ia & self.ir:
            raise ValueError("IA and IR must be disjoint")
        self._pair_shape = _pair_shape

    # -- constructions ---------------------------------------------------

    @classmethod
    def from_dfa(cls, dfa: DFA) -> "ImmediateDecisionAutomaton":
        """Definition 6: ``IA = {q | L(q)=Σ*}``, ``IR = {q | L(q)=∅}``.

        Both sets fall out of two reverse reachability passes: a state
        accepts Σ* iff no non-final state is reachable from it, and it
        accepts ∅ iff no final state is reachable from it.
        """
        non_finals = frozenset(range(dfa.num_states)) - dfa.finals
        ia = frozenset(range(dfa.num_states)) - dfa.states_reaching(non_finals)
        ir = frozenset(range(dfa.num_states)) - dfa.states_reaching(dfa.finals)
        return cls(dfa, ia, ir)

    @classmethod
    def from_pair(cls, source: DFA, target: DFA) -> "ImmediateDecisionAutomaton":
        """Definitions 7/8: the intersection automaton of ``source`` and
        ``target`` over the *full* state space, with subsumption-based
        ``IA`` and dead-state-based ``IR``."""
        a, b = harmonize(source, target)
        nb = b.num_states
        budget = state_budget()
        if budget is not None and a.num_states * nb > budget:
            raise StateBudgetExceededError(
                f"pair automaton would need {a.num_states * nb} states "
                f"({a.num_states}x{nb}), exceeding the max_dfa_states "
                f"budget of {budget}"
            )
        sigma = a.alphabet
        rows: list[dict[str, int]] = []
        for qa in range(a.num_states):
            arow = a.transitions[qa]
            for qb in range(nb):
                brow = b.transitions[qb]
                rows.append({s: arow[s] * nb + brow[s] for s in sigma})
        finals = frozenset(
            qa * nb + qb for qa in a.finals for qb in b.finals
        )
        product = DFA(sigma, rows, a.start * nb + b.start, finals)
        # Definition 8: (qa,qb) ∈ IA iff no reachable (q1,q2) has
        # q1 ∈ F_a but q2 ∉ F_b.
        bad = [
            qa * nb + qb
            for qa in a.finals
            for qb in range(nb)
            if qb not in b.finals
        ]
        ia = frozenset(range(product.num_states)) - product.states_reaching(bad)
        # IR: no final product state reachable — the "dead" condition
        # that is sound from any start state (the with-modifications
        # scan begins mid-automaton).  A pair can satisfy both conditions
        # only when the *source* component is itself dead, which cannot
        # arise on inputs honouring the s ∈ L(a) promise; IA wins there.
        ir = (
            frozenset(range(product.num_states))
            - product.states_reaching(finals)
            - ia
        )
        return cls(product, ia, ir, _pair_shape=(a.num_states, nb))

    # -- pair-state helpers -----------------------------------------------

    def pair_state(self, source_state: int, target_state: int) -> int:
        """Product-state index of ``(q_a, q_b)`` (pair construction only)."""
        if self._pair_shape is None:
            raise ValueError("not a pair-derived automaton")
        na, nb = self._pair_shape
        if not (0 <= source_state < na and 0 <= target_state < nb):
            raise ValueError("pair state out of range")
        return source_state * nb + target_state

    def unpair_state(self, state: int) -> tuple[int, int]:
        if self._pair_shape is None:
            raise ValueError("not a pair-derived automaton")
        _, nb = self._pair_shape
        return divmod(state, nb)

    # -- scanning -----------------------------------------------------------

    def scan(
        self, word: Sequence[str], start: Optional[int] = None
    ) -> ScanResult:
        """Scan ``word``, deciding as early as IA/IR membership allows.

        For a pair-derived automaton the verdict is sound only under the
        schema-cast promise: the suffix of ``word`` beyond any scanned
        prefix must be accepted by the source automaton from the current
        source state (guaranteed when ``word ∈ L(source)`` and ``start``
        is the initial state, or the corresponding mid-scan pair).
        """
        state = self.dfa.start if start is None else start
        table = self.dfa.transitions
        ia, ir = self.ia, self.ir
        scanned = 0
        for symbol in word:
            if state in ia:
                return ScanResult(True, scanned, Decision.IMMEDIATE_ACCEPT, state)
            if state in ir:
                return ScanResult(False, scanned, Decision.IMMEDIATE_REJECT, state)
            next_state = table[state].get(symbol)
            if next_state is None:
                # A symbol outside the alphabet can never be accepted.
                return ScanResult(
                    False, scanned + 1, Decision.IMMEDIATE_REJECT, state
                )
            state = next_state
            scanned += 1
        accepted = state in self.dfa.finals
        decision = Decision.ACCEPT_AT_END if accepted else Decision.REJECT_AT_END
        return ScanResult(accepted, scanned, decision, state)

    def accepts(self, word: Sequence[str]) -> bool:
        return self.scan(word).accepted

    def __repr__(self) -> str:
        return (
            f"ImmediateDecisionAutomaton({self.dfa.num_states} states, "
            f"|IA|={len(self.ia)}, |IR|={len(self.ir)})"
        )
