"""Dense compiled automaton tables over interned label alphabets.

The dict-row :class:`~repro.automata.dfa.DFA` representation is the
right shape for the *constructions* (products, minimization, reverse
reachability), but it makes the runtime hot loops pay a string hash per
scanned symbol.  Everything here is a post-construction compilation
step — purely static, derived from automata that depend only on the
schema pair, so the artifacts amortize over every document validated:

* :class:`SymbolTable` — a bijective interning of element labels to
  dense integers ``0..k-1``.  One table is shared per schema (its own
  alphabet) or per schema pair (the union alphabet), so one string
  lookup per *child label* replaces one per *automaton step*.
* :class:`CompiledDFA` — a complete DFA as flat tuple rows indexed by
  symbol id.  Entries are ``-1`` for symbols the underlying DFA's
  alphabet does not contain (the table may cover a superset alphabet);
  such symbols reject, exactly as the dict representation's missing-key
  path does.
* :class:`CompiledImmediate` — an immediate decision automaton
  (Section 4) with IA/IR/final membership as boolean masks, scanned by
  tuple indexing instead of frozenset hashing.

The interning is bijective, so every compiled run recognizes exactly
the language of the source automaton (word accepted iff its image under
the interning is accepted) — the constructions stay on the paper's
label alphabets and only the execution changes representation.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, KeysView, Optional, Sequence

from repro.automata.dfa import DFA
from repro.automata.immediate import ImmediateDecisionAutomaton


class LazyPairTable:
    """Promotion cache for per-type-pair compiled machines.

    Eagerly compiling the full product of a schema pair builds one
    machine per reachable complex ``(τ, τ')`` — quadratic in the type
    count, though a typical document only ever exercises a handful of
    pairs.  This table instead *promotes* pairs on first touch: the
    caller probes :meth:`get`, builds the machine on a miss, and
    :meth:`put`\\ s it back, so only hot pairs pay compilation and the
    counters record exactly how hot each run was.

    The table deliberately stores no factory callable — it lives inside
    :class:`~repro.schema.registry.SchemaPair`, which is pickled for
    persisted artifacts and spawn-based worker pools, and a captured
    builder closure would break that.  Construction stays at the call
    site.

    Iteration, ``len`` and ``keys()`` mirror the dict it replaced, so
    artifact round-trip checks and ablation sweeps can keep treating it
    as a mapping of materialized pairs.
    """

    __slots__ = ("_entries", "touches", "materializations")

    def __init__(self) -> None:
        self._entries: dict[Any, Any] = {}
        #: lookups served from the table (cheap probes, not builds).
        self.touches = 0
        #: machines built and stored — the eager/lazy savings metric.
        self.materializations = 0

    def get(self, key: Any) -> Optional[Any]:
        """The machine promoted for ``key``, or ``None`` (build it and
        :meth:`put` it back)."""
        machine = self._entries.get(key)
        if machine is not None:
            self.touches += 1
        return machine

    def put(self, key: Any, machine: Any) -> Any:
        """Promote ``key``: store its freshly built machine."""
        if key not in self._entries:
            self.materializations += 1
        self._entries[key] = machine
        return machine

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __getitem__(self, key: Any) -> Any:
        return self._entries[key]

    def keys(self) -> KeysView[Any]:
        return self._entries.keys()

    def __repr__(self) -> str:
        return (
            f"LazyPairTable({len(self._entries)} materialized, "
            f"{self.touches} touches)"
        )


class SymbolTable:
    """A bijective label → dense-int interning.

    Construction order fixes the ids; callers that want deterministic
    artifacts (content hashing, cached pickles) should pass sorted
    labels.  Unknown labels encode to ``-1``, which every compiled
    runner treats as an immediate mismatch.
    """

    __slots__ = ("labels", "ids")

    def __init__(self, labels: Iterable[str]):
        self.labels: tuple[str, ...] = tuple(dict.fromkeys(labels))
        self.ids: dict[str, int] = {
            label: index for index, label in enumerate(self.labels)
        }

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, label: str) -> bool:
        return label in self.ids

    def id(self, label: str) -> int:
        """The id of ``label``, or ``-1`` when not interned."""
        return self.ids.get(label, -1)

    def label(self, symbol_id: int) -> str:
        return self.labels[symbol_id]

    def encode(self, word: Iterable[str]) -> list[int]:
        """Intern a word; unknown labels become ``-1``."""
        ids = self.ids
        return [ids.get(symbol, -1) for symbol in word]

    def __repr__(self) -> str:
        return f"SymbolTable({len(self.labels)} labels)"


class CompiledDFA:
    """A complete DFA compiled to dense integer transition rows.

    ``rows[q][sid]`` is the successor of state ``q`` on the symbol with
    id ``sid``, or ``-1`` when that symbol is outside the underlying
    DFA's alphabet (possible when the symbol table covers a superset —
    e.g. the pair alphabet against one schema's content model).
    """

    __slots__ = ("symbols", "rows", "start", "finals_mask")

    def __init__(
        self,
        symbols: SymbolTable,
        rows: Sequence[Sequence[int]],
        start: int,
        finals_mask: Sequence[bool],
    ):
        self.symbols = symbols
        self.rows: tuple[tuple[int, ...], ...] = tuple(
            tuple(row) for row in rows
        )
        self.start = start
        self.finals_mask: tuple[bool, ...] = tuple(finals_mask)

    @classmethod
    def from_dfa(cls, dfa: DFA, symbols: SymbolTable) -> "CompiledDFA":
        rows = tuple(
            tuple(row.get(label, -1) for label in symbols.labels)
            for row in dfa.transitions
        )
        finals = dfa.finals
        mask = tuple(q in finals for q in range(dfa.num_states))
        return cls(symbols, rows, dfa.start, mask)

    @property
    def num_states(self) -> int:
        return len(self.rows)

    def run(self, ids: Iterable[int], start: Optional[int] = None) -> int:
        """The state reached on an interned word, or ``-1`` once any
        symbol falls outside the automaton's alphabet."""
        state = self.start if start is None else start
        rows = self.rows
        for sid in ids:
            if sid < 0:
                return -1
            state = rows[state][sid]
            if state < 0:
                return -1
        return state

    def run_from(self, state: int, ids: Iterable[int]) -> int:
        """``run`` with an explicit start state (mid-scan resumption)."""
        rows = self.rows
        for sid in ids:
            if sid < 0:
                return -1
            state = rows[state][sid]
            if state < 0:
                return -1
        return state

    def accepts(self, ids: Iterable[int]) -> bool:
        state = self.start
        rows = self.rows
        for sid in ids:
            if sid < 0:
                return False
            state = rows[state][sid]
            if state < 0:
                return False
        return self.finals_mask[state]

    def __repr__(self) -> str:
        return (
            f"CompiledDFA({self.num_states} states, "
            f"{len(self.symbols)} symbols)"
        )


class CompiledImmediate:
    """An immediate decision automaton compiled to dense tables.

    ``decide``/``scan`` replicate
    :meth:`~repro.automata.immediate.ImmediateDecisionAutomaton.scan`
    exactly — IA checked before IR, both before consuming the symbol,
    out-of-alphabet symbols an immediate reject — so the two
    representations are interchangeable verdict- and count-wise.
    """

    __slots__ = ("symbols", "rows", "start", "finals_mask", "ia_mask",
                 "ir_mask")

    def __init__(
        self,
        symbols: SymbolTable,
        rows: Sequence[Sequence[int]],
        start: int,
        finals_mask: Sequence[bool],
        ia_mask: Sequence[bool],
        ir_mask: Sequence[bool],
    ):
        self.symbols = symbols
        self.rows: tuple[tuple[int, ...], ...] = tuple(
            tuple(row) for row in rows
        )
        self.start = start
        self.finals_mask: tuple[bool, ...] = tuple(finals_mask)
        self.ia_mask: tuple[bool, ...] = tuple(ia_mask)
        self.ir_mask: tuple[bool, ...] = tuple(ir_mask)

    @classmethod
    def from_immediate(
        cls, immed: ImmediateDecisionAutomaton, symbols: SymbolTable
    ) -> "CompiledImmediate":
        dfa = immed.dfa
        rows = tuple(
            tuple(row.get(label, -1) for label in symbols.labels)
            for row in dfa.transitions
        )
        n = dfa.num_states
        return cls(
            symbols,
            rows,
            dfa.start,
            tuple(q in dfa.finals for q in range(n)),
            tuple(q in immed.ia for q in range(n)),
            tuple(q in immed.ir for q in range(n)),
        )

    @property
    def num_states(self) -> int:
        return len(self.rows)

    def decide(self, ids: Iterable[int], start: Optional[int] = None) -> bool:
        """The scan verdict alone — the stats-free hot path."""
        state = self.start if start is None else start
        rows = self.rows
        ia = self.ia_mask
        ir = self.ir_mask
        for sid in ids:
            if ia[state]:
                return True
            if ir[state]:
                return False
            if sid < 0:
                return False
            state = rows[state][sid]
            if state < 0:
                return False
        return self.finals_mask[state]

    def scan(
        self, ids: Sequence[int], start: Optional[int] = None
    ) -> tuple[bool, int, bool, int]:
        """``(accepted, symbols_scanned, early, state)`` with the same
        counting semantics as the dict-based ``scan``."""
        state = self.start if start is None else start
        rows = self.rows
        ia = self.ia_mask
        ir = self.ir_mask
        scanned = 0
        for sid in ids:
            if ia[state]:
                return True, scanned, True, state
            if ir[state]:
                return False, scanned, True, state
            if sid < 0:
                return False, scanned + 1, True, state
            next_state = rows[state][sid]
            if next_state < 0:
                return False, scanned + 1, True, state
            state = next_state
            scanned += 1
        return self.finals_mask[state], scanned, False, state

    def __repr__(self) -> str:
        return (
            f"CompiledImmediate({self.num_states} states, "
            f"{len(self.symbols)} symbols)"
        )
