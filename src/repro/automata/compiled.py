"""Dense compiled automaton tables over interned label alphabets.

The dict-row :class:`~repro.automata.dfa.DFA` representation is the
right shape for the *constructions* (products, minimization, reverse
reachability), but it makes the runtime hot loops pay a string hash per
scanned symbol.  Everything here is a post-construction compilation
step — purely static, derived from automata that depend only on the
schema pair, so the artifacts amortize over every document validated:

* :class:`SymbolTable` — a bijective interning of element labels to
  dense integers ``0..k-1``.  One table is shared per schema (its own
  alphabet) or per schema pair (the union alphabet), so one string
  lookup per *child label* replaces one per *automaton step*.
* :class:`CompiledDFA` — a complete DFA as one contiguous ``array('i')``
  in state-major order: the successor of state ``q`` on symbol ``sid``
  is ``flat[q * width + sid]``, with ``-1`` as the reject sentinel for
  symbols outside the underlying DFA's alphabet (the table may cover a
  superset alphabet).  The inner step is one index computation plus one
  load — no per-state tuple object, no second indirection.
* :class:`CompiledImmediate` — an immediate decision automaton
  (Section 4) with the same flat transition encoding plus one ``bytes``
  object of per-state flag bits (``FINAL``/``IA``/``IR``), so the
  early-decision test is a single byte load and mask.

``rows``/``finals_mask``/``ia_mask``/``ir_mask`` remain available as
lazily derived tuple views for construction-time code, tests and
introspection; hot paths walk ``flat``/``flags`` directly or hand them
to the optional compiled backend (:mod:`repro.kernel`), which performs
the identical walk in C.

The interning is bijective, so every compiled run recognizes exactly
the language of the source automaton (word accepted iff its image under
the interning is accepted) — the constructions stay on the paper's
label alphabets and only the execution changes representation.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Iterator, KeysView, Optional, Sequence

from repro import kernel as _kernel
from repro.automata.dfa import DFA
from repro.automata.immediate import ImmediateDecisionAutomaton

#: Per-state flag bits in the ``flags`` bytes of compiled machines.
FLAG_FINAL = 1
FLAG_IA = 2
FLAG_IR = 4


class LazyPairTable:
    """Promotion cache for per-type-pair compiled machines.

    Eagerly compiling the full product of a schema pair builds one
    machine per reachable complex ``(τ, τ')`` — quadratic in the type
    count, though a typical document only ever exercises a handful of
    pairs.  This table instead *promotes* pairs on first touch: the
    caller probes :meth:`get`, builds the machine on a miss, and
    :meth:`put`\\ s it back, so only hot pairs pay compilation and the
    counters record exactly how hot each run was.

    The table deliberately stores no factory callable — it lives inside
    :class:`~repro.schema.registry.SchemaPair`, which is pickled for
    persisted artifacts and spawn-based worker pools, and a captured
    builder closure would break that.  Construction stays at the call
    site.

    Iteration, ``len`` and ``keys()`` mirror the dict it replaced, so
    artifact round-trip checks and ablation sweeps can keep treating it
    as a mapping of materialized pairs.
    """

    __slots__ = ("_entries", "touches", "materializations")

    def __init__(self) -> None:
        self._entries: dict[Any, Any] = {}
        #: lookups served from the table (cheap probes, not builds).
        self.touches = 0
        #: machines built and stored — the eager/lazy savings metric.
        self.materializations = 0

    def get(self, key: Any) -> Optional[Any]:
        """The machine promoted for ``key``, or ``None`` (build it and
        :meth:`put` it back)."""
        machine = self._entries.get(key)
        if machine is not None:
            self.touches += 1
        return machine

    def put(self, key: Any, machine: Any) -> Any:
        """Promote ``key``: store its freshly built machine."""
        if key not in self._entries:
            self.materializations += 1
        self._entries[key] = machine
        return machine

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __getitem__(self, key: Any) -> Any:
        return self._entries[key]

    def keys(self) -> KeysView[Any]:
        return self._entries.keys()

    def __repr__(self) -> str:
        return (
            f"LazyPairTable({len(self._entries)} materialized, "
            f"{self.touches} touches)"
        )


class SymbolTable:
    """A bijective label → dense-int interning.

    Construction order fixes the ids; callers that want deterministic
    artifacts (content hashing, cached pickles) should pass sorted
    labels.  Unknown labels encode to ``-1``, which every compiled
    runner treats as an immediate mismatch.
    """

    __slots__ = ("labels", "ids")

    def __init__(self, labels: Iterable[str]):
        self.labels: tuple[str, ...] = tuple(dict.fromkeys(labels))
        self.ids: dict[str, int] = {
            label: index for index, label in enumerate(self.labels)
        }

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, label: str) -> bool:
        return label in self.ids

    def id(self, label: str) -> int:
        """The id of ``label``, or ``-1`` when not interned."""
        return self.ids.get(label, -1)

    def label(self, symbol_id: int) -> str:
        return self.labels[symbol_id]

    def encode(self, word: Iterable[str]) -> list[int]:
        """Intern a word; unknown labels become ``-1``."""
        ids = self.ids
        return [ids.get(symbol, -1) for symbol in word]

    def __repr__(self) -> str:
        return f"SymbolTable({len(self.labels)} labels)"


def _flatten(rows: Sequence[Sequence[int]]) -> tuple[array, int, int]:
    """``(flat, width, num_states)`` for a sequence of equal-width rows."""
    rows = [tuple(row) for row in rows]
    num_states = len(rows)
    width = len(rows[0]) if rows else 0
    flat = array("i")
    for row in rows:
        if len(row) != width:
            raise ValueError("transition rows must share one width")
        flat.extend(row)
    return flat, width, num_states


class CompiledDFA:
    """A complete DFA compiled to one flat integer transition table.

    The successor of state ``q`` on the symbol with id ``sid`` is
    ``flat[q * width + sid]``, or ``-1`` when that symbol is outside
    the underlying DFA's alphabet (possible when the symbol table
    covers a superset — e.g. the pair alphabet against one schema's
    content model).  ``flags`` holds :data:`FLAG_FINAL` per state.
    ``rows``/``finals_mask`` are derived tuple views for construction
    and test code; the hot walks never materialize them.
    """

    __slots__ = ("symbols", "flat", "width", "flags", "start",
                 "_rows", "_finals")

    def __init__(
        self,
        symbols: SymbolTable,
        rows: Sequence[Sequence[int]],
        start: int,
        finals_mask: Sequence[bool],
    ):
        self.symbols = symbols
        self.flat, self.width, _ = _flatten(rows)
        self.start = start
        self.flags = bytes(
            FLAG_FINAL if final else 0 for final in finals_mask
        )
        self._rows: Optional[tuple[tuple[int, ...], ...]] = None
        self._finals: Optional[tuple[bool, ...]] = None

    @classmethod
    def from_dfa(cls, dfa: DFA, symbols: SymbolTable) -> "CompiledDFA":
        rows = tuple(
            tuple(row.get(label, -1) for label in symbols.labels)
            for row in dfa.transitions
        )
        finals = dfa.finals
        mask = tuple(q in finals for q in range(dfa.num_states))
        return cls(symbols, rows, dfa.start, mask)

    def __getstate__(self):
        return (self.symbols, self.flat, self.width, self.flags, self.start)

    def __setstate__(self, state):
        self.symbols, self.flat, self.width, self.flags, self.start = state
        self._rows = None
        self._finals = None

    @property
    def num_states(self) -> int:
        return len(self.flags)

    @property
    def rows(self) -> tuple[tuple[int, ...], ...]:
        """Tuple-of-tuples view of the flat table (derived lazily)."""
        rows = self._rows
        if rows is None:
            flat, width = self.flat, self.width
            rows = tuple(
                tuple(flat[q * width:(q + 1) * width])
                for q in range(len(self.flags))
            )
            self._rows = rows
        return rows

    @property
    def finals_mask(self) -> tuple[bool, ...]:
        finals = self._finals
        if finals is None:
            finals = tuple(bool(f & FLAG_FINAL) for f in self.flags)
            self._finals = finals
        return finals

    def run(self, ids: Iterable[int], start: Optional[int] = None) -> int:
        """The state reached on an interned word, or ``-1`` once any
        symbol falls outside the automaton's alphabet."""
        state = self.start if start is None else start
        c = _kernel.C
        if c is not None:
            if not isinstance(ids, (list, tuple)):
                ids = list(ids)
            return c.dfa_run(self.flat, self.width, state, ids)
        flat = self.flat
        width = self.width
        for sid in ids:
            if sid < 0:
                return -1
            state = flat[state * width + sid]
            if state < 0:
                return -1
        return state

    def run_from(self, state: int, ids: Iterable[int]) -> int:
        """``run`` with an explicit start state (mid-scan resumption)."""
        return self.run(ids, state)

    def accepts(self, ids: Iterable[int]) -> bool:
        state = self.run(ids)
        return state >= 0 and bool(self.flags[state] & FLAG_FINAL)

    def __repr__(self) -> str:
        return (
            f"CompiledDFA({self.num_states} states, "
            f"{len(self.symbols)} symbols)"
        )


class CompiledImmediate:
    """An immediate decision automaton compiled to flat tables.

    Transitions share :class:`CompiledDFA`'s flat layout; ``flags``
    packs :data:`FLAG_FINAL`/:data:`FLAG_IA`/:data:`FLAG_IR` per state
    so the per-symbol early-decision check is one byte load and mask.
    ``decide``/``scan`` replicate
    :meth:`~repro.automata.immediate.ImmediateDecisionAutomaton.scan`
    exactly — IA checked before IR, both before consuming the symbol,
    out-of-alphabet symbols an immediate reject — so the two
    representations are interchangeable verdict- and count-wise.
    """

    __slots__ = ("symbols", "flat", "width", "flags", "start",
                 "_rows", "_finals", "_ia", "_ir")

    def __init__(
        self,
        symbols: SymbolTable,
        rows: Sequence[Sequence[int]],
        start: int,
        finals_mask: Sequence[bool],
        ia_mask: Sequence[bool],
        ir_mask: Sequence[bool],
    ):
        self.symbols = symbols
        self.flat, self.width, num_states = _flatten(rows)
        self.start = start
        finals = tuple(finals_mask)
        ia = tuple(ia_mask)
        ir = tuple(ir_mask)
        self.flags = bytes(
            (FLAG_FINAL if finals[q] else 0)
            | (FLAG_IA if ia[q] else 0)
            | (FLAG_IR if ir[q] else 0)
            for q in range(num_states)
        )
        self._rows: Optional[tuple[tuple[int, ...], ...]] = None
        self._finals: Optional[tuple[bool, ...]] = None
        self._ia: Optional[tuple[bool, ...]] = None
        self._ir: Optional[tuple[bool, ...]] = None

    @classmethod
    def from_immediate(
        cls, immed: ImmediateDecisionAutomaton, symbols: SymbolTable
    ) -> "CompiledImmediate":
        dfa = immed.dfa
        rows = tuple(
            tuple(row.get(label, -1) for label in symbols.labels)
            for row in dfa.transitions
        )
        n = dfa.num_states
        return cls(
            symbols,
            rows,
            dfa.start,
            tuple(q in dfa.finals for q in range(n)),
            tuple(q in immed.ia for q in range(n)),
            tuple(q in immed.ir for q in range(n)),
        )

    def __getstate__(self):
        return (self.symbols, self.flat, self.width, self.flags, self.start)

    def __setstate__(self, state):
        self.symbols, self.flat, self.width, self.flags, self.start = state
        self._rows = None
        self._finals = None
        self._ia = None
        self._ir = None

    @property
    def num_states(self) -> int:
        return len(self.flags)

    @property
    def rows(self) -> tuple[tuple[int, ...], ...]:
        """Tuple-of-tuples view of the flat table (derived lazily)."""
        rows = self._rows
        if rows is None:
            flat, width = self.flat, self.width
            rows = tuple(
                tuple(flat[q * width:(q + 1) * width])
                for q in range(len(self.flags))
            )
            self._rows = rows
        return rows

    @property
    def finals_mask(self) -> tuple[bool, ...]:
        finals = self._finals
        if finals is None:
            finals = tuple(bool(f & FLAG_FINAL) for f in self.flags)
            self._finals = finals
        return finals

    @property
    def ia_mask(self) -> tuple[bool, ...]:
        ia = self._ia
        if ia is None:
            ia = tuple(bool(f & FLAG_IA) for f in self.flags)
            self._ia = ia
        return ia

    @property
    def ir_mask(self) -> tuple[bool, ...]:
        ir = self._ir
        if ir is None:
            ir = tuple(bool(f & FLAG_IR) for f in self.flags)
            self._ir = ir
        return ir

    def decide(self, ids: Iterable[int], start: Optional[int] = None) -> bool:
        """The scan verdict alone — the stats-free hot path."""
        state = self.start if start is None else start
        c = _kernel.C
        if c is not None:
            if not isinstance(ids, (list, tuple)):
                ids = list(ids)
            return c.imm_decide(self.flat, self.flags, self.width, state, ids)
        flat = self.flat
        width = self.width
        flags = self.flags
        for sid in ids:
            f = flags[state]
            if f & 2:  # FLAG_IA
                return True
            if f & 4:  # FLAG_IR
                return False
            if sid < 0:
                return False
            state = flat[state * width + sid]
            if state < 0:
                return False
        return bool(flags[state] & 1)  # FLAG_FINAL

    def step(self, state: int, sid: int) -> int:
        """One transition; ``-1`` rejects (hot-loop helper)."""
        if sid < 0 or state < 0:
            return -1
        return self.flat[state * self.width + sid]

    def scan(
        self, ids: Sequence[int], start: Optional[int] = None
    ) -> tuple[bool, int, bool, int]:
        """``(accepted, symbols_scanned, early, state)`` with the same
        counting semantics as the dict-based ``scan``."""
        state = self.start if start is None else start
        c = _kernel.C
        if c is not None:
            if not isinstance(ids, (list, tuple)):
                ids = list(ids)
            return c.imm_scan(self.flat, self.flags, self.width, state, ids)
        flat = self.flat
        width = self.width
        flags = self.flags
        scanned = 0
        for sid in ids:
            f = flags[state]
            if f & 2:  # FLAG_IA
                return True, scanned, True, state
            if f & 4:  # FLAG_IR
                return False, scanned, True, state
            if sid < 0:
                return False, scanned + 1, True, state
            next_state = flat[state * width + sid]
            if next_state < 0:
                return False, scanned + 1, True, state
            state = next_state
            scanned += 1
        return bool(flags[state] & 1), scanned, False, state

    def __repr__(self) -> str:
        return (
            f"CompiledImmediate({self.num_states} states, "
            f"{len(self.symbols)} symbols)"
        )
