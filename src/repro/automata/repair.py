"""Minimal edits to bring a string into a DFA's language.

This is the automata half of the paper's stated future work —
"exploring how a system may automatically correct a document valid
according to one schema so that it conforms to a new schema"
(Section 7).  At the content-model level the question is a classical
one: the *edit distance from a string to a regular language*, computed
by shortest path over the layered graph of (input position, DFA state)
nodes:

* consuming the next input symbol unchanged costs 0 (a match);
* substituting it with another symbol costs 1;
* deleting it costs 1;
* inserting a symbol (staying at the same input position) costs 1.

All edge weights are 0 or 1, so 0-1 BFS (a deque-based Dijkstra) finds
the optimum in O(|s| · |Q| · |Σ|).  The returned script uses the same
``Insert``/``Delete``/``Replace`` operations as
:mod:`repro.automata.edits`, with positions referring to the string as
it stands when each operation runs (apply them in order).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.automata.dfa import DFA
from repro.automata.edits import Delete, EditOp, Insert, Replace


def language_edit_distance(
    dfa: DFA, word: Sequence[str]
) -> Optional[tuple[int, list[EditOp]]]:
    """(minimal edit count, one optimal script), or None if ``L(dfa)``
    is empty.

    The script is canonical: among optimal scripts, matches are
    preferred, then substitutions, deletions, insertions, with symbols
    tried in sorted order — so the result is deterministic.
    """
    if dfa.is_empty():
        return None
    n = len(word)
    num_states = dfa.num_states
    symbols = sorted(dfa.alphabet)

    def node(i: int, q: int) -> int:
        return i * num_states + q

    INF = float("inf")
    dist: list[float] = [INF] * ((n + 1) * num_states)
    parent: list[Optional[tuple[int, Optional[EditOp]]]] = [None] * len(dist)
    start = node(0, dfa.start)
    dist[start] = 0
    queue: deque[int] = deque([start])

    def relax(source: int, target: int, cost: int,
              op: Optional[EditOp]) -> None:
        candidate = dist[source] + cost
        if candidate < dist[target]:
            dist[target] = candidate
            parent[target] = (source, op)
            if cost == 0:
                queue.appendleft(target)
            else:
                queue.append(target)

    visited = [False] * len(dist)
    while queue:
        current = queue.popleft()
        if visited[current]:
            continue
        visited[current] = True
        i, q = divmod(current, num_states)
        row = dfa.transitions[q]
        if i < n:
            symbol = word[i]
            # Match (cost 0) — relax first so it wins ties.
            dst = row.get(symbol)
            if dst is not None:
                relax(current, node(i + 1, dst), 0, None)
            # Substitution.
            for other in symbols:
                if other != symbol:
                    relax(
                        current,
                        node(i + 1, row[other]),
                        1,
                        Replace(i, other),
                    )
            # Deletion.
            relax(current, node(i + 1, q), 1, Delete(i))
        # Insertion (any position, including past the end).
        for other in symbols:
            relax(current, node(i, row[other]), 1, Insert(i, other))

    best_state = None
    best = INF
    for q in dfa.finals:
        if dist[node(n, q)] < best:
            best = dist[node(n, q)]
            best_state = q
    if best_state is None:
        # Unreachable: L(dfa) non-empty means inserts alone can reach a
        # final state from anywhere that is co-reachable... the start
        # may still be trapped if no final is reachable from it.
        return None

    # Reconstruct the raw operations (positions in the *original* word).
    raw_ops: list[EditOp] = []
    current = node(n, best_state)
    while current != start:
        entry = parent[current]
        assert entry is not None
        current, op = entry
        if op is not None:
            raw_ops.append(op)
    raw_ops.reverse()
    return int(best), _renumber(raw_ops)


def _renumber(raw_ops: list[EditOp]) -> list[EditOp]:
    """Convert original-word positions to apply-in-order positions.

    The search emits positions relative to the original string; when the
    script is applied sequentially, earlier insertions/deletions shift
    later positions.  Operations come out of the search ordered by
    original position, so a running offset suffices.
    """
    adjusted: list[EditOp] = []
    offset = 0
    for op in raw_ops:
        if isinstance(op, Insert):
            adjusted.append(Insert(op.position + offset, op.symbol))
            offset += 1
        elif isinstance(op, Delete):
            adjusted.append(Delete(op.position + offset))
            offset -= 1
        else:
            assert isinstance(op, Replace)
            adjusted.append(Replace(op.position + offset, op.symbol))
    return adjusted


def repair_word(dfa: DFA, word: Sequence[str]) -> Optional[list[str]]:
    """The corrected word itself (None when the language is empty)."""
    outcome = language_edit_distance(dfa, word)
    if outcome is None:
        return None
    _, ops = outcome
    from repro.automata.edits import EditScript

    script = EditScript(list(word))
    script.apply_all(ops)
    return script.modified
