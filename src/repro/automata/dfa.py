"""Deterministic finite automata over explicit label alphabets.

DFAs here are always *complete*: every state maps every alphabet symbol to
a successor (a non-accepting sink absorbs undeclared symbols).  Complete
DFAs make the paper's constructions direct: the intersection automaton is
the full product (Section 4.1), language inclusion is a product
reachability check, and immediate decision automata (Section 4.2) can
classify every state.

States are dense integers ``0..n-1``; transitions are stored as one
``dict[symbol, state]`` per state.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.errors import StateBudgetExceededError
from repro.guards import state_budget


class DFA:
    """A complete deterministic finite automaton.

    Args:
        alphabet: the symbol set; transitions must cover exactly these.
        transitions: ``transitions[q][σ]`` is the successor of ``q`` on σ.
        start: the initial state.
        finals: accepting states.
    """

    __slots__ = ("alphabet", "transitions", "start", "finals")

    def __init__(
        self,
        alphabet: Iterable[str],
        transitions: Sequence[dict[str, int]],
        start: int,
        finals: Iterable[int],
    ):
        self.alphabet = frozenset(alphabet)
        self.transitions = tuple(dict(row) for row in transitions)
        self.start = start
        self.finals = frozenset(finals)
        self._validate()

    def _validate(self) -> None:
        n = len(self.transitions)
        if not 0 <= self.start < n:
            raise ValueError(f"start state {self.start} out of range")
        if any(not 0 <= q < n for q in self.finals):
            raise ValueError("final state out of range")
        for q, row in enumerate(self.transitions):
            if set(row) != self.alphabet:
                missing = self.alphabet - set(row)
                extra = set(row) - self.alphabet
                raise ValueError(
                    f"state {q} transition row mismatch: "
                    f"missing={sorted(missing)}, extra={sorted(extra)}"
                )
            if any(not 0 <= dst < n for dst in row.values()):
                raise ValueError(f"state {q} has an out-of-range successor")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_partial(
        cls,
        alphabet: Iterable[str],
        num_states: int,
        transitions: dict[tuple[int, str], int],
        start: int,
        finals: Iterable[int],
    ) -> "DFA":
        """Build a complete DFA from a partial transition map.

        Missing transitions are routed to a fresh non-accepting sink (only
        added when needed).
        """
        sigma = frozenset(alphabet)
        rows: list[dict[str, int]] = [dict() for _ in range(num_states)]
        for (q, symbol), dst in transitions.items():
            if symbol not in sigma:
                raise ValueError(f"transition on {symbol!r} not in alphabet")
            rows[q][symbol] = dst
        needs_sink = any(len(row) != len(sigma) for row in rows) or not rows
        if needs_sink:
            sink = len(rows)
            rows.append({})
            for row in rows:
                for symbol in sigma:
                    row.setdefault(symbol, sink)
        return cls(sigma, rows, start, finals)

    @classmethod
    def empty_language(cls, alphabet: Iterable[str]) -> "DFA":
        """A DFA accepting nothing."""
        sigma = frozenset(alphabet)
        return cls(sigma, [{s: 0 for s in sigma}], 0, ())

    @classmethod
    def universal_language(cls, alphabet: Iterable[str]) -> "DFA":
        """A DFA accepting every string over the alphabet."""
        sigma = frozenset(alphabet)
        return cls(sigma, [{s: 0 for s in sigma}], 0, (0,))

    @classmethod
    def epsilon_language(cls, alphabet: Iterable[str]) -> "DFA":
        """A DFA accepting only the empty string."""
        sigma = frozenset(alphabet)
        return cls(
            sigma,
            [{s: 1 for s in sigma}, {s: 1 for s in sigma}],
            0,
            (0,),
        )

    # -- basic execution ------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def step(self, state: int, symbol: str) -> int:
        return self.transitions[state][symbol]

    def run(self, word: Iterable[str], start: Optional[int] = None) -> int:
        """The state reached from ``start`` (default: initial) on ``word``."""
        state = self.start if start is None else start
        table = self.transitions
        for symbol in word:
            state = table[state][symbol]
        return state

    def trace(self, word: Iterable[str]) -> Iterator[int]:
        """Yield the state sequence (including the start state)."""
        state = self.start
        table = self.transitions
        yield state
        for symbol in word:
            state = table[state][symbol]
            yield state

    def accepts(self, word: Iterable[str]) -> bool:
        """Language membership; symbols outside the alphabet reject
        (they cannot occur in any accepted word)."""
        state = self.start
        table = self.transitions
        for symbol in word:
            row = table[state]
            if symbol not in row:
                return False
            state = row[symbol]
        return state in self.finals

    def is_final(self, state: int) -> bool:
        return state in self.finals

    # -- graph analyses --------------------------------------------------------

    def reachable_states(self, start: Optional[int] = None) -> frozenset[int]:
        """States reachable from ``start`` (default: initial state)."""
        seen = {self.start if start is None else start}
        queue = deque(seen)
        while queue:
            q = queue.popleft()
            for dst in self.transitions[q].values():
                if dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        return frozenset(seen)

    def reverse_adjacency(self) -> list[set[int]]:
        """``result[q]`` = states with a transition into ``q``."""
        incoming: list[set[int]] = [set() for _ in range(self.num_states)]
        for q, row in enumerate(self.transitions):
            for dst in row.values():
                incoming[dst].add(q)
        return incoming

    def states_reaching(self, targets: Iterable[int]) -> frozenset[int]:
        """States from which some state in ``targets`` is reachable
        (including the targets themselves)."""
        incoming = self.reverse_adjacency()
        seen = set(targets)
        queue = deque(seen)
        while queue:
            q = queue.popleft()
            for src in incoming[q]:
                if src not in seen:
                    seen.add(src)
                    queue.append(src)
        return frozenset(seen)

    def coreachable_states(self) -> frozenset[int]:
        """States from which an accepting state is reachable."""
        return self.states_reaching(self.finals)

    def dead_states(self) -> frozenset[int]:
        """States that are unreachable or cannot reach a final state —
        the paper's two-condition definition (Section 4.1)."""
        reachable = self.reachable_states()
        coreachable = self.coreachable_states()
        return frozenset(
            q for q in range(self.num_states)
            if q not in reachable or q not in coreachable
        )

    def is_empty(self) -> bool:
        """Is the accepted language empty?"""
        return not (self.reachable_states() & self.finals)

    def is_universal(self) -> bool:
        """Does the DFA accept every string over its alphabet?"""
        return all(q in self.finals for q in self.reachable_states())

    def shortest_accepted(self) -> Optional[list[str]]:
        """A shortest accepted word (BFS), or None if the language is
        empty.  Symbol choice is deterministic (sorted) for test
        stability."""
        if self.start in self.finals:
            return []
        parent: dict[int, tuple[int, str]] = {}
        queue = deque([self.start])
        seen = {self.start}
        ordered = sorted(self.alphabet)
        while queue:
            q = queue.popleft()
            for symbol in ordered:
                dst = self.transitions[q][symbol]
                if dst in seen:
                    continue
                seen.add(dst)
                parent[dst] = (q, symbol)
                if dst in self.finals:
                    word: list[str] = []
                    node = dst
                    while node != self.start:
                        node, symbol = parent[node]
                        word.append(symbol)
                    word.reverse()
                    return word
                queue.append(dst)
        return None

    # -- language algebra --------------------------------------------------------

    def with_alphabet(self, alphabet: Iterable[str]) -> "DFA":
        """Reinterpret over a (super)alphabet; new symbols go to a sink.

        The language over the original alphabet is unchanged; strings
        using new symbols are rejected.
        """
        sigma = frozenset(alphabet)
        if not sigma >= self.alphabet:
            raise ValueError("new alphabet must contain the old one")
        if sigma == self.alphabet:
            return self
        new_symbols = sigma - self.alphabet
        sink = self.num_states
        rows = [dict(row) for row in self.transitions]
        rows.append({})
        for row in rows:
            for symbol in new_symbols:
                row[symbol] = sink
        for symbol in self.alphabet:
            rows[sink][symbol] = sink
        return DFA(sigma, rows, self.start, self.finals)

    def complement(self) -> "DFA":
        """A DFA for the complement language (same alphabet)."""
        finals = frozenset(range(self.num_states)) - self.finals
        return DFA(self.alphabet, self.transitions, self.start, finals)

    def product(
        self, other: "DFA", is_final: Callable[[bool, bool], bool]
    ) -> "DFA":
        """Reachable product construction with a boolean final-state rule.

        Both operands must share an alphabet (use :func:`harmonize`).
        ``is_final(a_final, b_final)`` decides acceptance, so this one
        construction yields intersection (``and``), union (``or``) and
        difference (``a and not b``).
        """
        if self.alphabet != other.alphabet:
            raise ValueError("product requires harmonized alphabets")
        budget = state_budget()
        index: dict[tuple[int, int], int] = {}
        rows: list[dict[str, int]] = []
        pairs: list[tuple[int, int]] = []

        def intern(pair: tuple[int, int]) -> int:
            if pair not in index:
                if budget is not None and len(pairs) >= budget:
                    raise StateBudgetExceededError(
                        f"product construction exceeds the "
                        f"max_dfa_states budget of {budget} "
                        f"({self.num_states}x{other.num_states} operands)"
                    )
                index[pair] = len(pairs)
                pairs.append(pair)
                rows.append({})
            return index[pair]

        start = intern((self.start, other.start))
        queue = deque([start])
        visited = {start}
        while queue:
            q = queue.popleft()
            qa, qb = pairs[q]
            for symbol in self.alphabet:
                dst = intern(
                    (self.transitions[qa][symbol], other.transitions[qb][symbol])
                )
                rows[q][symbol] = dst
                if dst not in visited:
                    visited.add(dst)
                    queue.append(dst)
        finals = frozenset(
            i
            for i, (qa, qb) in enumerate(pairs)
            if is_final(qa in self.finals, qb in other.finals)
        )
        return DFA(self.alphabet, rows, start, finals)

    def intersection(self, other: "DFA") -> "DFA":
        return self.product(other, lambda a, b: a and b)

    def union(self, other: "DFA") -> "DFA":
        return self.product(other, lambda a, b: a or b)

    def difference(self, other: "DFA") -> "DFA":
        return self.product(other, lambda a, b: a and not b)

    def is_subset_of(self, other: "DFA") -> bool:
        """Language inclusion ``L(self) ⊆ L(other)``.

        Implemented as emptiness of ``L(self) ∩ ¬L(other)`` — the
        reachability check used by the `R_sub` refinement (Definition 4
        condition ii).
        """
        a, b = harmonize(self, other)
        return a.difference(b).is_empty()

    def equivalent(self, other: "DFA") -> bool:
        return self.is_subset_of(other) and other.is_subset_of(self)

    def intersects(
        self, other: "DFA", restrict_to: Optional[Iterable[str]] = None
    ) -> bool:
        """Is ``L(self) ∩ L(other) ∩ restrict_to*`` non-empty?

        ``restrict_to`` implements the ``P*`` filter of the `R_nondis`
        fixpoint (Definition 5): the product is explored using only the
        allowed symbols.
        """
        a, b = harmonize(self, other)
        allowed = (
            a.alphabet if restrict_to is None
            else frozenset(restrict_to) & a.alphabet
        )
        budget = state_budget()
        start = (a.start, b.start)
        if a.is_final(start[0]) and b.is_final(start[1]):
            return True
        seen = {start}
        queue = deque([start])
        while queue:
            qa, qb = queue.popleft()
            for symbol in allowed:
                pair = (a.transitions[qa][symbol], b.transitions[qb][symbol])
                if pair in seen:
                    continue
                if a.is_final(pair[0]) and b.is_final(pair[1]):
                    return True
                if budget is not None and len(seen) >= budget:
                    raise StateBudgetExceededError(
                        f"product reachability exceeds the "
                        f"max_dfa_states budget of {budget}"
                    )
                seen.add(pair)
                queue.append(pair)
        return False

    # -- minimization -------------------------------------------------------------

    def trim_unreachable(self) -> "DFA":
        """Drop states unreachable from the start state."""
        reachable = sorted(self.reachable_states())
        if len(reachable) == self.num_states:
            return self
        renumber = {old: new for new, old in enumerate(reachable)}
        rows = [
            {s: renumber[dst] for s, dst in self.transitions[old].items()}
            for old in reachable
        ]
        finals = frozenset(renumber[q] for q in self.finals if q in renumber)
        return DFA(self.alphabet, rows, renumber[self.start], finals)

    def minimize(self) -> "DFA":
        """Hopcroft minimization (after trimming unreachable states)."""
        dfa = self.trim_unreachable()
        n = dfa.num_states
        finals = set(dfa.finals)
        nonfinals = set(range(n)) - finals
        partition: list[set[int]] = [block for block in (finals, nonfinals) if block]
        if len(partition) == 1:
            # All states equivalent: one-state automaton.
            row = {s: 0 for s in dfa.alphabet}
            return DFA(dfa.alphabet, [row], 0, (0,) if finals else ())
        worklist: list[tuple[int, str]] = [
            (i, s) for i in range(len(partition)) for s in dfa.alphabet
        ]
        incoming: dict[str, list[set[int]]] = {
            s: [set() for _ in range(n)] for s in dfa.alphabet
        }
        for q in range(n):
            for s, dst in dfa.transitions[q].items():
                incoming[s][dst].add(q)
        membership = [0] * n
        for i, block in enumerate(partition):
            for q in block:
                membership[q] = i
        while worklist:
            block_id, symbol = worklist.pop()
            splitter = partition[block_id]
            predecessors: set[int] = set()
            for q in splitter:
                predecessors |= incoming[symbol][q]
            affected: dict[int, set[int]] = {}
            for q in predecessors:
                affected.setdefault(membership[q], set()).add(q)
            for target_id, inside in affected.items():
                block = partition[target_id]
                if len(inside) == len(block):
                    continue
                outside = block - inside
                # Keep the smaller part as the new block (Hopcroft trick).
                if len(inside) <= len(outside):
                    new_block, partition[target_id] = inside, outside
                else:
                    new_block, partition[target_id] = outside, inside
                new_id = len(partition)
                partition.append(new_block)
                for q in new_block:
                    membership[q] = new_id
                for s in dfa.alphabet:
                    worklist.append((new_id, s))
        rows = [dict() for _ in partition]  # type: list[dict[str, int]]
        for i, block in enumerate(partition):
            representative = next(iter(block))
            for s in dfa.alphabet:
                rows[i][s] = membership[dfa.transitions[representative][s]]
        start = membership[dfa.start]
        new_finals = frozenset(membership[q] for q in dfa.finals)
        return DFA(dfa.alphabet, rows, start, new_finals)

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"DFA({self.num_states} states, {len(self.alphabet)} symbols, "
            f"{len(self.finals)} finals)"
        )


def harmonize(a: DFA, b: DFA) -> tuple[DFA, DFA]:
    """Rebuild both DFAs over the union of their alphabets."""
    sigma = a.alphabet | b.alphabet
    return a.with_alphabet(sigma), b.with_alphabet(sigma)
