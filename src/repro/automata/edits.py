"""String edit scripts for the with-modifications string cast (Sec 4.3).

The revalidation algorithm needs one fact about the edited string: where
the *unmodified* region begins (scanning forward) or ends (scanning
backward).  :class:`EditScript` applies insert/delete/replace operations
to a symbol sequence while tracking the leftmost and rightmost touched
positions, and :func:`common_affix_lengths` recovers the same information
from just the two strings when no script is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import UpdateError


@dataclass(frozen=True)
class Insert:
    """Insert ``symbol`` so that it lands at ``position`` in the result."""

    position: int
    symbol: str


@dataclass(frozen=True)
class Delete:
    """Delete the symbol currently at ``position``."""

    position: int


@dataclass(frozen=True)
class Replace:
    """Replace the symbol currently at ``position`` with ``symbol``."""

    position: int
    symbol: str


EditOp = Insert | Delete | Replace


class EditScript:
    """An ordered sequence of edits applied to a symbol list.

    Edits are applied in order against the *current* string (positions
    refer to the string as it stands when the edit runs, as in a DOM
    editing session).  The script tracks how many leading and trailing
    symbols of the original provably survive untouched, which is what
    the forward/reverse scan strategies of Section 4.3 consume.
    """

    def __init__(self, original: Sequence[str]):
        self.original = list(original)
        self.current = list(original)
        # Untouched margins, maintained conservatively under each edit.
        self._prefix = len(self.original)
        self._suffix = len(self.original)

    def __len__(self) -> int:
        return len(self.current)

    @property
    def modified(self) -> list[str]:
        return list(self.current)

    def apply(self, op: EditOp) -> None:
        n = len(self.current)
        if isinstance(op, Insert):
            if not 0 <= op.position <= n:
                raise UpdateError(f"insert position {op.position} out of range")
            self.current.insert(op.position, op.symbol)
            self._shrink(op.position, tail_after=op.position)
        elif isinstance(op, Delete):
            if not 0 <= op.position < n:
                raise UpdateError(f"delete position {op.position} out of range")
            del self.current[op.position]
            self._shrink(op.position, tail_after=op.position - 1)
        elif isinstance(op, Replace):
            if not 0 <= op.position < n:
                raise UpdateError(f"replace position {op.position} out of range")
            self.current[op.position] = op.symbol
            self._shrink(op.position, tail_after=op.position)
        else:  # pragma: no cover - defensive
            raise UpdateError(f"unknown edit operation {op!r}")

    def apply_all(self, ops: Sequence[EditOp]) -> None:
        for op in ops:
            self.apply(op)

    def _shrink(self, touched_at: int, tail_after: int) -> None:
        """Clamp the untouched prefix to end before ``touched_at`` and the
        untouched suffix to start after ``tail_after`` (both w.r.t. the
        current string)."""
        self._prefix = min(self._prefix, touched_at)
        remaining_tail = len(self.current) - (tail_after + 1)
        self._suffix = min(self._suffix, max(remaining_tail, 0))

    @property
    def untouched_prefix(self) -> int:
        """Symbols at the front of the current string that provably equal
        the original's front."""
        return min(self._prefix, len(self.current), len(self.original))

    @property
    def untouched_suffix(self) -> int:
        """Symbols at the back of the current string that provably equal
        the original's back (disjoint from the untouched prefix)."""
        bound = min(self._suffix, len(self.current), len(self.original))
        # Prefix and suffix regions must not overlap in either string.
        overlap_cap = min(
            len(self.current) - self.untouched_prefix,
            len(self.original) - self.untouched_prefix,
        )
        return min(bound, max(overlap_cap, 0))


def common_affix_lengths(
    original: Sequence[str], modified: Sequence[str]
) -> tuple[int, int]:
    """(longest common prefix, longest common suffix of the remainders).

    The suffix is computed on the parts *after* the common prefix so the
    two regions never overlap; together they bound the modified window.
    """
    n, m = len(original), len(modified)
    prefix = 0
    while prefix < n and prefix < m and original[prefix] == modified[prefix]:
        prefix += 1
    suffix = 0
    while (
        suffix < n - prefix
        and suffix < m - prefix
        and original[n - 1 - suffix] == modified[m - 1 - suffix]
    ):
        suffix += 1
    return prefix, suffix
