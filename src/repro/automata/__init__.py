"""Finite automata toolkit: DFA/NFA, reversal, immediate decision
automata, and string schema-cast validation (Section 4 of the paper)."""

from repro.automata.dfa import DFA, harmonize
from repro.automata.edits import (
    Delete,
    EditScript,
    Insert,
    Replace,
    common_affix_lengths,
)
from repro.automata.immediate import (
    Decision,
    ImmediateDecisionAutomaton,
    ScanResult,
)
from repro.automata.nfa import NFA, reverse, reverse_dfa
from repro.automata.repair import language_edit_distance, repair_word
from repro.automata.stringcast import (
    CastScanResult,
    Strategy,
    StringCastValidator,
    StringUpdateRevalidator,
)

__all__ = [
    "DFA",
    "harmonize",
    "Delete",
    "EditScript",
    "Insert",
    "Replace",
    "common_affix_lengths",
    "Decision",
    "ImmediateDecisionAutomaton",
    "ScanResult",
    "NFA",
    "language_edit_distance",
    "repair_word",
    "reverse",
    "reverse_dfa",
    "CastScanResult",
    "Strategy",
    "StringCastValidator",
    "StringUpdateRevalidator",
]
