"""Nondeterministic finite automata and subset construction.

NFAs appear in two places in the reproduction: as the Glushkov position
automaton of a content model that violates one-unambiguity (hand-written
abstract schemas may do this; XSD-derived ones cannot), and as the
reverse automaton used by the with-modifications string cast when edits
cluster at the end of the string (Section 4.3, footnote 3).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.automata.dfa import DFA
from repro.errors import StateBudgetExceededError
from repro.guards import state_budget


class NFA:
    """An NFA with ε-transitions and a set of start states."""

    __slots__ = ("alphabet", "transitions", "epsilon", "starts", "finals")

    def __init__(
        self,
        alphabet: Iterable[str],
        num_states: int,
        transitions: dict[tuple[int, str], Iterable[int]],
        starts: Iterable[int],
        finals: Iterable[int],
        epsilon: Optional[dict[int, Iterable[int]]] = None,
    ):
        self.alphabet = frozenset(alphabet)
        rows: list[dict[str, frozenset[int]]] = [dict() for _ in range(num_states)]
        for (q, symbol), dsts in transitions.items():
            if symbol not in self.alphabet:
                raise ValueError(f"transition on {symbol!r} not in alphabet")
            rows[q][symbol] = frozenset(dsts) | rows[q].get(symbol, frozenset())
        self.transitions: tuple[dict[str, frozenset[int]], ...] = tuple(rows)
        self.epsilon: tuple[frozenset[int], ...] = tuple(
            frozenset((epsilon or {}).get(q, ())) for q in range(num_states)
        )
        self.starts = frozenset(starts)
        self.finals = frozenset(finals)

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        seen = set(states)
        queue = deque(seen)
        while queue:
            q = queue.popleft()
            for dst in self.epsilon[q]:
                if dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        return frozenset(seen)

    def move(self, states: Iterable[int], symbol: str) -> frozenset[int]:
        out: set[int] = set()
        for q in states:
            out |= self.transitions[q].get(symbol, frozenset())
        return self.epsilon_closure(out)

    def accepts(self, word: Iterable[str]) -> bool:
        current = self.epsilon_closure(self.starts)
        for symbol in word:
            if symbol not in self.alphabet:
                return False
            current = self.move(current, symbol)
            if not current:
                return False
        return bool(current & self.finals)

    def determinize(self, *, max_states: Optional[int] = None) -> DFA:
        """Subset construction; the result is complete (dead subset = ∅
        becomes the sink).

        ``max_states`` bounds the exponential blowup on crafted inputs
        (default: the ambient ``Limits.max_dfa_states``); exceeding it
        raises :class:`StateBudgetExceededError` instead of exhausting
        memory.
        """
        budget = max_states if max_states is not None else state_budget()
        start_set = self.epsilon_closure(self.starts)
        index: dict[frozenset[int], int] = {start_set: 0}
        subsets: list[frozenset[int]] = [start_set]
        rows: list[dict[str, int]] = [dict()]
        queue = deque([start_set])
        while queue:
            subset = queue.popleft()
            q = index[subset]
            for symbol in self.alphabet:
                target = self.move(subset, symbol)
                if target not in index:
                    if budget is not None and len(subsets) >= budget:
                        raise StateBudgetExceededError(
                            f"subset construction exceeds the "
                            f"max_dfa_states budget of {budget} "
                            f"(NFA has {self.num_states} states)"
                        )
                    index[target] = len(subsets)
                    subsets.append(target)
                    rows.append({})
                    queue.append(target)
                rows[q][symbol] = index[target]
        finals = frozenset(
            i for i, subset in enumerate(subsets) if subset & self.finals
        )
        return DFA(self.alphabet, rows, 0, finals)

    def __repr__(self) -> str:
        return (
            f"NFA({self.num_states} states, {len(self.alphabet)} symbols, "
            f"{len(self.starts)} starts, {len(self.finals)} finals)"
        )


def reverse(dfa: DFA) -> NFA:
    """The reverse automaton of a DFA (recognizes reversed words).

    As the paper notes, the reverse of a deterministic automaton is in
    general nondeterministic; determinize as needed.
    """
    transitions: dict[tuple[int, str], set[int]] = {}
    for q, row in enumerate(dfa.transitions):
        for symbol, dst in row.items():
            transitions.setdefault((dst, symbol), set()).add(q)
    return NFA(
        dfa.alphabet,
        dfa.num_states,
        transitions,
        starts=dfa.finals,
        finals=(dfa.start,),
    )


def reverse_dfa(dfa: DFA) -> DFA:
    """Determinized reverse automaton (accepts exactly reversed L(dfa))."""
    return reverse(dfa).determinize()
