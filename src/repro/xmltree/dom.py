"""Ordered labelled trees — the document model of the paper.

The paper abstracts XML documents as ordered labelled trees ``T = (t, λ)``
where interior nodes carry element labels from Σ and leaves may carry the
special label χ representing simple (text) content.  This module implements
that model directly:

* :class:`Element` — a node with a label, attributes, and ordered children.
* :class:`Text` — a χ-labelled leaf holding character data.
* :class:`Document` — the tree root wrapper, plus a lazily built
  label→elements index (used by the DTD optimization of Section 3.4).

Nodes know their parent and their position among their siblings, so Dewey
decimal numbers (Section 3.3) are derivable from any node in O(depth).

Every node also carries a cached **structural hash** — a bottom-up
rolling fingerprint of its subtree (label, attributes, child hashes,
simple-content value) that the memoized pair-validation layer
(:mod:`repro.core.memo`) uses to recognise structurally identical
subtrees in O(1).  The invariants:

* two subtrees with equal labels, attributes, child structure and text
  hash equally (within one process; the hash is not stable across
  processes);
* every mutation that goes through the DOM API (``append``, ``insert``,
  ``remove``, the ``label`` and ``Text.value`` setters) invalidates the
  cached hashes of exactly the mutated node's ancestor chain — its Dewey
  path — and nothing else;
* mutating ``Element.attributes`` directly bypasses the tracking; call
  :meth:`Node.invalidate_structural_hash` afterwards (the update-session
  layer does this for you).

Hashes are computed lazily and cached, so an unmutated subtree is
fingerprinted at most once no matter how often it is revalidated; the
parser additionally seals hashes bottom-up at build time so parsed
documents arrive fully fingerprinted.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Union

from repro.dewey import Dewey

#: The χ pseudo-label the paper assigns to simple-content leaves.
CHI = "#text"


class Node:
    """Common behaviour of element and text nodes."""

    __slots__ = ("parent", "index", "_shash")

    def __init__(self) -> None:
        self.parent: Optional[Element] = None
        #: position among the parent's children; -1 when detached.
        self.index: int = -1
        #: cached structural hash of this subtree; ``None`` when stale.
        self._shash: Optional[int] = None

    @property
    def label(self) -> str:
        raise NotImplementedError

    # -- structural hashing ------------------------------------------------

    @property
    def cached_structural_hash(self) -> Optional[int]:
        """The cached hash, or ``None`` when it has been invalidated
        (introspection for tests and diagnostics; does not compute)."""
        return self._shash

    def structural_hash(self) -> int:
        """The rolling structural fingerprint of this subtree.

        Computed bottom-up (iteratively, so arbitrarily deep trees never
        exhaust the Python stack) and cached on every node it visits;
        a cached node is O(1).
        """
        cached = self._shash
        if cached is not None:
            return cached
        stack: list[tuple[Node, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if node._shash is not None:
                continue
            if isinstance(node, Text):
                node._shash = hash((CHI, node._value))
            elif expanded:
                element_node: Element = node  # type: ignore[assignment]
                attrs = element_node._attributes
                node._shash = hash(
                    (
                        element_node._label,
                        tuple(sorted(attrs.items())) if attrs else (),
                        tuple(
                            child._shash
                            for child in element_node.children
                        ),
                    )
                )
            else:
                stack.append((node, True))
                for child in node.children:  # type: ignore[attr-defined]
                    if child._shash is None:
                        stack.append((child, False))
        assert self._shash is not None
        return self._shash

    def invalidate_structural_hash(self) -> None:
        """Drop the cached hashes of this node and its ancestors.

        The walk stops at the first already-stale node: a cached
        ancestor implies cached descendants (hashes are computed
        bottom-up over whole subtrees), so a stale node's ancestors are
        stale too.
        """
        node: Optional[Node] = self
        while node is not None and node._shash is not None:
            node._shash = None
            node = node.parent

    def dewey(self) -> Dewey:
        """Dewey decimal number of this node (root element = empty path)."""
        steps: list[int] = []
        node: Node = self
        while node.parent is not None:
            steps.append(node.index)
            node = node.parent
        steps.reverse()
        return Dewey(steps)

    def root(self) -> "Node":
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def depth(self) -> int:
        count = 0
        node: Node = self
        while node.parent is not None:
            count += 1
            node = node.parent
        return count


class Text(Node):
    """A leaf holding character data; its label is the χ pseudo-label."""

    __slots__ = ("_value",)

    def __init__(self, value: str):
        super().__init__()
        self._value = value

    @property
    def value(self) -> str:
        return self._value

    @value.setter
    def value(self, new_value: str) -> None:
        self._value = new_value
        self.invalidate_structural_hash()

    @property
    def label(self) -> str:
        return CHI

    def __repr__(self) -> str:
        preview = self.value if len(self.value) <= 30 else self.value[:27] + "..."
        return f"Text({preview!r})"


class Element(Node):
    """An element node: label, attribute map, ordered children.

    The attribute dict is lazy: most elements in real corpora carry no
    attributes, so ``_attributes`` stays ``None`` until someone touches
    the public :attr:`attributes` mapping, which materializes (and
    keeps) a real dict.  Hot paths read the ``_attributes`` slot
    directly and treat ``None`` and ``{}`` identically.

    ``sym`` is the element label interned into a
    :class:`~repro.automata.compiled.SymbolTable` at parse time (``-1``
    when the document was parsed without a table, or the label is
    outside the table's alphabet).  Which table it indexes is recorded
    on the owning :class:`Document`; validators use ``sym`` only after
    checking that identity.
    """

    __slots__ = ("_label", "_attributes", "children", "sym")

    def __init__(
        self,
        label: str,
        attributes: Optional[dict[str, str]] = None,
        children: Optional[list[Union["Element", Text]]] = None,
    ):
        super().__init__()
        self._label = label
        self._attributes: Optional[dict[str, str]] = (
            dict(attributes) if attributes else None
        )
        self.children: list[Union[Element, Text]] = []
        self.sym: int = -1
        for child in children or ():
            self.append(child)

    @classmethod
    def _sealed(
        cls,
        label: str,
        attributes: Optional[dict[str, str]],
        sym: int,
    ) -> "Element":
        """Parser fast path: adopt ``attributes`` (no defensive copy —
        the caller just built the dict and hands over ownership) and
        skip the ``__init__`` child loop."""
        node = cls.__new__(cls)
        node.parent = None
        node.index = -1
        node._shash = None
        node._label = label
        node._attributes = attributes
        node.children = []
        node.sym = sym
        return node

    @property
    def attributes(self) -> dict[str, str]:
        """The attribute mapping, materialized on first access.

        The returned dict is live — mutating it mutates the element
        (callers must invalidate the structural hash afterwards, as
        documented in the module docstring)."""
        attrs = self._attributes
        if attrs is None:
            attrs = self._attributes = {}
        return attrs

    @property
    def label(self) -> str:
        return self._label

    @label.setter
    def label(self, new_label: str) -> None:
        self._label = new_label
        # The interned id indexes the old label; drop it rather than
        # re-intern (relabelled nodes are rare and the validators fall
        # back to the string lookup on -1).
        self.sym = -1
        self.invalidate_structural_hash()

    # -- tree construction --------------------------------------------------

    def append(self, child: Union["Element", Text]) -> Union["Element", Text]:
        """Attach ``child`` as the last child and return it."""
        if child.parent is not None:
            raise ValueError(f"{child!r} is already attached")
        child.parent = self
        child.index = len(self.children)
        self.children.append(child)
        self.invalidate_structural_hash()
        return child

    def insert(self, position: int, child: Union["Element", Text]) -> None:
        """Attach ``child`` at ``position``, shifting later siblings."""
        if child.parent is not None:
            raise ValueError(f"{child!r} is already attached")
        if not 0 <= position <= len(self.children):
            raise IndexError(f"insert position {position} out of range")
        child.parent = self
        self.children.insert(position, child)
        self._renumber(position)
        self.invalidate_structural_hash()

    def remove(self, child: Union["Element", Text]) -> None:
        """Detach ``child``; later siblings shift left."""
        if child.parent is not self:
            raise ValueError(f"{child!r} is not a child of {self!r}")
        position = child.index
        del self.children[position]
        child.parent = None
        child.index = -1
        self._renumber(position)
        self.invalidate_structural_hash()

    def _renumber(self, start: int) -> None:
        for i in range(start, len(self.children)):
            self.children[i].index = i

    # -- navigation ----------------------------------------------------------

    def child_elements(self) -> list["Element"]:
        return [c for c in self.children if isinstance(c, Element)]

    def child_labels(self) -> list[str]:
        """Labels of element children, in order — the string the paper's
        ``constructstring`` builds for content-model checks."""
        return [c.label for c in self.children if isinstance(c, Element)]

    def text(self) -> str:
        """Concatenated character data of the immediate text children."""
        return "".join(c.value for c in self.children if isinstance(c, Text))

    def find(self, label: str) -> Optional["Element"]:
        """First child element with the given label, if any."""
        for child in self.children:
            if isinstance(child, Element) and child.label == label:
                return child
        return None

    def find_all(self, label: str) -> list["Element"]:
        return [
            c for c in self.children if isinstance(c, Element) and c.label == label
        ]

    def iter(self) -> Iterator["Element"]:
        """Pre-order iterator over this element and descendant elements."""
        stack: list[Element] = [self]
        while stack:
            element = stack.pop()
            yield element
            stack.extend(reversed(element.child_elements()))

    def iter_nodes(self) -> Iterator[Node]:
        """Pre-order iterator over all nodes (elements and text)."""
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                stack.extend(reversed(node.children))

    def node_at(self, dewey: Dewey) -> Node:
        """Resolve a Dewey number relative to this node."""
        node: Node = self
        for step in dewey:
            if not isinstance(node, Element) or step >= len(node.children):
                raise KeyError(f"no node at {dewey} under {self!r}")
            node = node.children[step]
        return node

    def size(self) -> int:
        """Total number of nodes (elements + text) in this subtree."""
        return sum(1 for _ in self.iter_nodes())

    def copy(self) -> "Element":
        """Deep copy of this subtree, detached from any parent."""
        attrs = self._attributes
        clone = Element._sealed(
            self._label, dict(attrs) if attrs else None, self.sym
        )
        for child in self.children:
            if isinstance(child, Element):
                clone.append(child.copy())
            else:
                clone.append(Text(child.value))
        return clone

    def structurally_equal(self, other: "Element") -> bool:
        """Label/children/text equality, ignoring attributes."""
        if self._label != other._label or len(self.children) != len(other.children):
            return False
        for mine, theirs in zip(self.children, other.children):
            if isinstance(mine, Text) != isinstance(theirs, Text):
                return False
            if isinstance(mine, Text):
                if mine.value != theirs.value:  # type: ignore[union-attr]
                    return False
            elif not mine.structurally_equal(theirs):  # type: ignore[union-attr]
                return False
        return True

    def __repr__(self) -> str:
        return f"Element({self._label!r}, {len(self.children)} children)"


class Document:
    """A parsed XML document: the root element plus document-level info."""

    def __init__(self, root: Element, doctype_name: str = "",
                 internal_subset: str = "", symbols=None):
        self.root = root
        #: root name declared by ``<!DOCTYPE name ...>`` (empty if none).
        self.doctype_name = doctype_name
        #: raw text of the DTD internal subset (empty if none).
        self.internal_subset = internal_subset
        #: the :class:`~repro.automata.compiled.SymbolTable` the
        #: elements' ``sym`` fields index, or ``None`` when the document
        #: was parsed without lex-time interning.  Validators compare
        #: this *by identity* against their own table before trusting
        #: any ``sym``.
        self.symbols = symbols
        self._label_index: Optional[dict[str, list[Element]]] = None

    def iter(self) -> Iterator[Element]:
        return self.root.iter()

    def node_at(self, dewey: Dewey) -> Node:
        return self.root.node_at(dewey)

    def size(self) -> int:
        return self.root.size()

    def invalidate_index(self) -> None:
        """Drop the label index (call after structural mutation)."""
        self._label_index = None

    def elements_with_label(self, label: str) -> list[Element]:
        """All elements carrying ``label``, in document order.

        Backed by a lazily built index — this is the direct-access
        structure the DTD optimization of Section 3.4 assumes.
        """
        if self._label_index is None:
            index: dict[str, list[Element]] = {}
            for element in self.root.iter():
                index.setdefault(element.label, []).append(element)
            self._label_index = index
        return self._label_index.get(label, [])

    def labels(self) -> set[str]:
        """The set of element labels occurring in the document."""
        if self._label_index is None:
            self.elements_with_label("")  # force index build
        assert self._label_index is not None
        return set(self._label_index)

    def copy(self) -> "Document":
        return Document(self.root.copy(), self.doctype_name,
                        self.internal_subset, symbols=self.symbols)

    def __repr__(self) -> str:
        return f"Document(root={self.root.label!r}, {self.size()} nodes)"


def element(label: str, *children: Union[Element, Text, str],
            attrs: Optional[dict[str, str]] = None) -> Element:
    """Concise tree builder used pervasively in tests and examples.

    Strings become text children::

        element("item", element("qty", "5"))
    """
    node = Element(label, attrs)
    for child in children:
        if isinstance(child, str):
            node.append(Text(child))
        else:
            node.append(child)
    return node


def walk(root: Element, visit: Callable[[Node], None]) -> None:
    """Apply ``visit`` to every node of the subtree in document order."""
    for node in root.iter_nodes():
        visit(node)
