"""XML substrate: parser, ordered labelled tree (DOM), serializer."""

from repro.xmltree.dom import (
    CHI,
    Document,
    Element,
    Node,
    Text,
    element,
    walk,
)
from repro.xmltree.events import (
    Characters,
    EndElement,
    StartElement,
    iterparse,
)
from repro.xmltree.parser import parse, parse_file, parse_fragment
from repro.xmltree.serializer import serialize, write_file

__all__ = [
    "CHI",
    "Document",
    "Element",
    "Node",
    "Text",
    "element",
    "walk",
    "Characters",
    "EndElement",
    "StartElement",
    "iterparse",
    "parse",
    "parse_file",
    "parse_fragment",
    "serialize",
    "write_file",
]
