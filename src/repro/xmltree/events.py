"""Streaming (SAX-style) XML parsing.

:func:`iterparse` yields start/text/end events without ever building a
tree — the substrate for :class:`repro.core.streaming.StreamingValidator`,
which validates in O(document depth) memory.  The event stream matches
the DOM parser's semantics exactly: same entity handling, same
whitespace-only text suppression (unless ``keep_whitespace``), same
error positions; a tree built from the events equals :func:`parse`'s.

Like the tree parser, the event loop runs on the bulk master regex
(:data:`repro.xmltree.lexer.MASTER_RE`) — one C-level match per tag or
text run — and replays malformed markup through the character-level
scanner primitives so diagnostics are unchanged from the historical
implementation.  Pass ``symbols=`` to intern element labels as they are
lexed: ``StartElement.sym`` then carries the label's dense id in that
table (``-1`` otherwise), which the streaming validators use to skip
per-event string hashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterator, Mapping, Optional, Union

from repro.guards import (
    Deadline,
    Limits,
    check_depth,
    check_document_size,
    resolve_limits,
)
from repro.xmltree.lexer import (
    TOK_CDATA,
    TOK_COMMENT,
    TOK_END,
    TOK_START,
    TOK_TEXT,
    Scanner,
)

#: Shared empty attribute mapping for the (dominant) no-attribute case —
#: read-only so sharing is safe.
_NO_ATTRIBUTES: Mapping[str, str] = MappingProxyType({})


@dataclass(frozen=True)
class StartElement:
    label: str
    attributes: Mapping[str, str]
    #: dense id of ``label`` in the symbol table ``iterparse`` was given
    #: (-1 without a table or for out-of-alphabet labels).  Not part of
    #: equality: the same document yields equal events whether or not it
    #: was lexed with interning.
    sym: int = field(default=-1, compare=False, repr=False)


@dataclass(frozen=True)
class Characters:
    value: str


@dataclass(frozen=True)
class EndElement:
    label: str


Event = Union[StartElement, Characters, EndElement]


def iterparse(
    text: str,
    *,
    keep_whitespace: bool = False,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
    symbols=None,
) -> Iterator[Event]:
    """Yield parse events for a whole XML document.

    The same resource guards as :func:`repro.xmltree.parser.parse`
    apply: document size up front, nesting depth as elements open,
    entity expansions inside the scanner, and the optional wall-clock
    deadline ticked once per start tag.
    """
    limits = resolve_limits(limits)
    check_document_size(len(text), limits)
    if deadline is None:
        deadline = limits.deadline()
    scanner = Scanner(text, limits=limits, deadline=deadline)
    _skip_prolog(scanner)
    if not scanner.starts_with("<"):
        raise scanner.error("expected the root element")
    yield from _element_events(scanner, keep_whitespace, symbols)
    _trailing_misc(scanner)


def _trailing_misc(scanner: Scanner) -> None:
    """Consume comments/PIs/whitespace after the root element."""
    while not scanner.at_end():
        scanner.skip_whitespace()
        if scanner.at_end():
            break
        if scanner.starts_with("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", what="comment")
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", what="processing instruction")
        else:
            raise scanner.error("content after the root element")


def _skip_prolog(scanner: Scanner) -> None:
    scanner.skip_whitespace()
    if scanner.starts_with("<?xml"):
        scanner.advance(2)
        scanner.read_until("?>", what="XML declaration")
    while True:
        scanner.skip_whitespace()
        if scanner.starts_with("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", what="comment")
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", what="processing instruction")
        elif scanner.starts_with("<!DOCTYPE"):
            _skip_doctype(scanner)
        else:
            return


def _skip_doctype(scanner: Scanner) -> None:
    scanner.expect("<!DOCTYPE")
    depth = 0
    while True:
        ch = scanner.peek()
        if ch == "":
            raise scanner.error("unterminated DOCTYPE")
        if ch in ("'", '"'):
            scanner.read_quoted()
            continue
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            scanner.advance()
            return
        scanner.advance()


def _element_events(
    scanner: Scanner,
    keep_whitespace: bool,
    symbols=None,
    stack: Optional[list[str]] = None,
    pull: "Optional[PullParser]" = None,
) -> Iterator[Event]:
    """Iterative traversal: yields events for one element subtree.

    ``stack``/``pull`` wire the :class:`PullParser` skip channel in:
    the open-element stack is shared with the pull handle (so a
    mid-stream byte skim can pop the element it just fast-forwarded
    past), ``pull._skippable`` is raised exactly while the generator is
    suspended on a ``StartElement``, and a skim that closes the root
    sets ``pull._root_done`` so the loop ends without ever seeing the
    root's close tag.
    """
    ids = symbols.ids if symbols is not None else None
    deadline = scanner.deadline
    if stack is None:
        stack = []
    text_parts: list[str] = []

    def flush_text() -> Iterator[Event]:
        if not text_parts:
            return
        value = "".join(text_parts)
        text_parts.clear()
        if value.strip() == "" and not keep_whitespace:
            return
        yield Characters(value)

    while True:
        if pull is not None and pull._root_done:
            return
        pos = scanner.pos
        hit = scanner.next_content_match()
        if hit is None:
            done = yield from _replay_slow(scanner, stack, flush_text)
            if done:
                return
            continue
        kind, m = hit

        if kind == TOK_TEXT:
            raw = m.group("text")
            scanner.pos = m.end()
            bad = raw.find("]]>")
            if bad >= 0:
                raise scanner.error(
                    "']]>' is not allowed in character data", pos + bad
                )
            if not stack:
                if raw.strip():
                    raise scanner.error("character data outside the root")
                continue
            if "&" in raw:
                raw = scanner.decode_entities(raw, pos)
            text_parts.append(raw)

        elif kind == TOK_START:
            yield from flush_text()
            check_depth(len(stack) + 1, scanner.limits)
            if deadline is not None:
                deadline.tick()
            name, attributes, self_closing = scanner.start_tag_parts(m)
            sym = ids.get(name, -1) if ids is not None else -1
            event_attrs: Mapping[str, str] = (
                attributes if attributes is not None else _NO_ATTRIBUTES
            )
            if self_closing:
                if pull is not None:
                    pull._skippable = True
                    pull._pending_self_close = True
                yield StartElement(name, event_attrs, sym)
                if pull is not None:
                    pull._skippable = False
                    pull._pending_self_close = False
                yield EndElement(name)
                if not stack:
                    return
            else:
                stack.append(name)
                if pull is not None:
                    pull._skippable = True
                yield StartElement(name, event_attrs, sym)
                if pull is not None:
                    pull._skippable = False

        elif kind == TOK_END:
            yield from flush_text()
            close_name = m.group("ename")
            scanner.pos = m.end()
            if not stack or stack[-1] != close_name:
                raise scanner.error(f"mismatched close tag </{close_name}>")
            stack.pop()
            yield EndElement(close_name)
            if not stack:
                return

        elif kind == TOK_COMMENT:
            scanner.pos = m.end()
            if "--" in m.group("comment"):
                raise scanner.error("'--' is not allowed inside a comment")

        elif kind == TOK_CDATA:
            scanner.pos = m.end()
            text_parts.append(m.group("cdata"))

        else:  # TOK_PI
            scanner.pos = m.end()


def _replay_slow(scanner: Scanner, stack: list[str], flush_text):
    """Re-diagnose a position the master regex declined, reproducing the
    historical character-level event loop's branches (and their event
    ordering: text flushes before close/start tags are consumed).

    Returns truthy when the traversal is complete; otherwise raises.
    """
    if scanner.at_end():
        if stack:
            raise scanner.error(f"unterminated element <{stack[-1]}>")
        return True
    if scanner.starts_with("</"):
        yield from flush_text()
        scanner.advance(2)
        close_name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect(">")
        if not stack or stack[-1] != close_name:
            raise scanner.error(f"mismatched close tag </{close_name}>")
    elif scanner.starts_with("<!--"):
        scanner.advance(4)
        body = scanner.read_until("-->", what="comment")
        if "--" in body:
            raise scanner.error("'--' is not allowed inside a comment")
    elif scanner.starts_with("<![CDATA["):
        scanner.advance(len("<![CDATA["))
        scanner.read_until("]]>", what="CDATA section")
    elif scanner.starts_with("<?"):
        scanner.advance(2)
        scanner.read_until("?>", what="processing instruction")
    else:
        yield from flush_text()
        check_depth(len(stack) + 1, scanner.limits)
        if scanner.deadline is not None:
            scanner.deadline.tick()
        scanner.expect("<")
        name = scanner.read_name()
        _attributes(scanner, name)
        if not scanner.match("/>"):
            scanner.expect(">")
    raise AssertionError(
        "master regex rejected markup the character-level scanner accepts "
        f"at offset {scanner.pos}"
    )


class PullParser:
    """A pull-style handle over :func:`iterparse` with a skip channel.

    Iterating a ``PullParser`` yields exactly the events ``iterparse``
    would (same guards, same diagnostics).  The extra capability is
    :meth:`skip_subtree`: immediately after consuming a
    :class:`StartElement`, the consumer may declare the whole subtree
    uninteresting — the underlying :class:`~repro.xmltree.lexer.Scanner`
    then *skims* straight to the matching end tag at the byte level
    (:meth:`Scanner.skim_subtree`) without tokenizing, entity-decoding,
    or interning anything in between, and iteration resumes after the
    close tag.  No events are delivered for the skipped region, not
    even the element's own :class:`EndElement`.

    This is the validator→lexer control channel the streaming cast
    uses: a subsumed ``(source, target)`` pair's subtree needs no
    checks, so it need not be parsed either.

    Attributes:
        bytes_skipped: source characters fast-forwarded over so far.
        subtrees_skipped: completed :meth:`skip_subtree` calls.
    """

    def __init__(
        self,
        text: str,
        *,
        keep_whitespace: bool = False,
        limits: Optional[Limits] = None,
        deadline: Optional[Deadline] = None,
        symbols=None,
    ):
        limits = resolve_limits(limits)
        check_document_size(len(text), limits)
        if deadline is None:
            deadline = limits.deadline()
        self.scanner = Scanner(text, limits=limits, deadline=deadline)
        self.bytes_skipped = 0
        self.subtrees_skipped = 0
        #: Open-element labels, shared with the event generator.
        self._stack: list[str] = []
        #: True exactly while the generator is suspended on a
        #: StartElement — the only moment a skip is well-defined.
        self._skippable = False
        #: The suspended StartElement came from a self-closing tag (its
        #: EndElement is already queued; there is nothing to skim).
        self._pending_self_close = False
        #: A skim consumed the root's close tag; the generator must not
        #: scan for further element content.
        self._root_done = False
        self._keep_whitespace = keep_whitespace
        self._symbols = symbols
        self._events = self._run()

    def __iter__(self) -> "PullParser":
        return self

    def __next__(self) -> Event:
        return next(self._events)

    def _run(self) -> Iterator[Event]:
        scanner = self.scanner
        _skip_prolog(scanner)
        if not scanner.starts_with("<"):
            raise scanner.error("expected the root element")
        yield from _element_events(
            scanner,
            self._keep_whitespace,
            self._symbols,
            stack=self._stack,
            pull=self,
        )
        _trailing_misc(scanner)

    def skip_subtree(self, *, trusted: bool = False) -> int:
        """Byte-skim past the element whose ``StartElement`` was just
        consumed; returns the number of characters skipped.

        Legal only immediately after ``next()``/iteration returned a
        :class:`StartElement` (otherwise raises ``ValueError`` — there
        is no well-defined subtree to skip).  For a self-closing tag
        the pending :class:`EndElement` is silently drained and the
        skip is trivially 0 bytes.  ``trusted=True`` selects the
        byte-search scanner (see :meth:`Scanner.skim_subtree` for the
        well-formedness contract it assumes).
        """
        if not self._skippable:
            raise ValueError(
                "skip_subtree() is only legal immediately after a "
                "StartElement event"
            )
        if self._pending_self_close:
            event = next(self._events)
            assert isinstance(event, EndElement)
            self.subtrees_skipped += 1
            return 0
        self._skippable = False
        scanner = self.scanner
        start = scanner.pos
        end = scanner.skim_subtree(
            label=self._stack[-1],
            base_depth=len(self._stack),
            trusted=trusted,
        )
        self._stack.pop()
        if not self._stack:
            self._root_done = True
        skipped = end - start
        self.bytes_skipped += skipped
        self.subtrees_skipped += 1
        return skipped


def _attributes(scanner: Scanner, element_name: str) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        had_space = scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or ch == "":
            return attributes
        if not had_space:
            raise scanner.error(
                f"expected whitespace before attribute in <{element_name}>"
            )
        attr_pos = scanner.pos
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        value_pos = scanner.pos + 1
        raw_value = scanner.read_quoted()
        if name in attributes:
            raise scanner.error(
                f"duplicate attribute {name!r} in <{element_name}>",
                attr_pos,
            )
        attributes[name] = scanner.decode_entities(raw_value, value_pos)
