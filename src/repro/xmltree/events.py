"""Streaming (SAX-style) XML parsing.

:func:`iterparse` yields start/text/end events without ever building a
tree — the substrate for :class:`repro.core.streaming.StreamingValidator`,
which validates in O(document depth) memory.  The event stream matches
the DOM parser's semantics exactly: same entity handling, same
whitespace-only text suppression (unless ``keep_whitespace``), same
error positions; a tree built from the events equals :func:`parse`'s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.errors import XMLSyntaxError
from repro.guards import (
    Deadline,
    Limits,
    check_depth,
    check_document_size,
    resolve_limits,
)
from repro.xmltree.lexer import Scanner


@dataclass(frozen=True)
class StartElement:
    label: str
    attributes: dict[str, str]


@dataclass(frozen=True)
class Characters:
    value: str


@dataclass(frozen=True)
class EndElement:
    label: str


Event = Union[StartElement, Characters, EndElement]


def iterparse(
    text: str,
    *,
    keep_whitespace: bool = False,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
) -> Iterator[Event]:
    """Yield parse events for a whole XML document.

    The same resource guards as :func:`repro.xmltree.parser.parse`
    apply: document size up front, nesting depth as elements open,
    entity expansions inside the scanner, and the optional wall-clock
    deadline ticked once per start tag.
    """
    limits = resolve_limits(limits)
    check_document_size(len(text), limits)
    if deadline is None:
        deadline = limits.deadline()
    scanner = Scanner(text, limits=limits, deadline=deadline)
    _skip_prolog(scanner)
    if not scanner.starts_with("<"):
        raise scanner.error("expected the root element")
    yield from _element_events(scanner, keep_whitespace)
    while not scanner.at_end():
        scanner.skip_whitespace()
        if scanner.at_end():
            break
        if scanner.starts_with("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", what="comment")
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", what="processing instruction")
        else:
            raise scanner.error("content after the root element")


def _skip_prolog(scanner: Scanner) -> None:
    scanner.skip_whitespace()
    if scanner.starts_with("<?xml"):
        scanner.advance(2)
        scanner.read_until("?>", what="XML declaration")
    while True:
        scanner.skip_whitespace()
        if scanner.starts_with("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", what="comment")
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", what="processing instruction")
        elif scanner.starts_with("<!DOCTYPE"):
            _skip_doctype(scanner)
        else:
            return


def _skip_doctype(scanner: Scanner) -> None:
    scanner.expect("<!DOCTYPE")
    depth = 0
    while True:
        ch = scanner.peek()
        if ch == "":
            raise scanner.error("unterminated DOCTYPE")
        if ch in ("'", '"'):
            scanner.read_quoted()
            continue
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            scanner.advance()
            return
        scanner.advance()


def _element_events(
    scanner: Scanner, keep_whitespace: bool
) -> Iterator[Event]:
    """Iterative traversal: yields events for one element subtree."""
    stack: list[str] = []
    text_parts: list[str] = []

    def flush_text() -> Iterator[Event]:
        if not text_parts:
            return
        value = "".join(text_parts)
        text_parts.clear()
        if value.strip() == "" and not keep_whitespace:
            return
        yield Characters(value)

    while True:
        if scanner.at_end():
            if stack:
                raise scanner.error(f"unterminated element <{stack[-1]}>")
            return
        if scanner.starts_with("</"):
            yield from flush_text()
            scanner.advance(2)
            close_name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect(">")
            if not stack or stack[-1] != close_name:
                raise scanner.error(
                    f"mismatched close tag </{close_name}>"
                )
            stack.pop()
            yield EndElement(close_name)
            if not stack:
                return
            continue
        if scanner.starts_with("<!--"):
            scanner.advance(4)
            body = scanner.read_until("-->", what="comment")
            if "--" in body:
                raise scanner.error("'--' is not allowed inside a comment")
            continue
        if scanner.starts_with("<![CDATA["):
            scanner.advance(len("<![CDATA["))
            text_parts.append(
                scanner.read_until("]]>", what="CDATA section")
            )
            continue
        if scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", what="processing instruction")
            continue
        if scanner.starts_with("<"):
            yield from flush_text()
            check_depth(len(stack) + 1, scanner.limits)
            if scanner.deadline is not None:
                scanner.deadline.tick()
            scanner.expect("<")
            name = scanner.read_name()
            attributes = _attributes(scanner, name)
            if scanner.match("/>"):
                yield StartElement(name, attributes)
                yield EndElement(name)
                if not stack:
                    return
                continue
            scanner.expect(">")
            stack.append(name)
            yield StartElement(name, attributes)
            continue
        chunk_start = scanner.pos
        while not scanner.at_end() and scanner.peek() != "<":
            scanner.advance()
        raw = scanner.text[chunk_start : scanner.pos]
        if "]]>" in raw:
            raise scanner.error(
                "']]>' is not allowed in character data",
                chunk_start + raw.find("]]>"),
            )
        if not stack:
            if raw.strip():
                raise scanner.error("character data outside the root")
            continue
        text_parts.append(scanner.decode_entities(raw, chunk_start))


def _attributes(scanner: Scanner, element_name: str) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        had_space = scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or ch == "":
            return attributes
        if not had_space:
            raise scanner.error(
                f"expected whitespace before attribute in <{element_name}>"
            )
        attr_pos = scanner.pos
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        value_pos = scanner.pos + 1
        raw_value = scanner.read_quoted()
        if name in attributes:
            raise scanner.error(
                f"duplicate attribute {name!r} in <{element_name}>",
                attr_pos,
            )
        attributes[name] = scanner.decode_entities(raw_value, value_pos)
