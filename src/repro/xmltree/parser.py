"""Bulk-lexing XML parser producing :class:`~repro.xmltree.dom.Document`.

Supports the XML 1.0 constructs the reproduction needs: prolog, DOCTYPE
(with internal subset captured verbatim for the DTD front-end), elements,
attributes, character data with entity references, CDATA sections,
comments and processing instructions.  Namespace prefixes are kept as part
of names (no expansion), matching the paper's label-based tree model.

By default whitespace-only text between elements is dropped — the paper's
ordered labelled trees have χ leaves only for genuine simple content, and
Xerces-style validators likewise treat such runs as ignorable in element
content.  Pass ``keep_whitespace=True`` to retain them.

The implementation is a single iterative loop over the master content
regex (:data:`repro.xmltree.lexer.MASTER_RE`) with an explicit
open-element stack: one C-level match consumes a whole tag (attributes
included) or text run, children are attached without going through the
mutation-tracked DOM API (the tree under construction has no cached
hashes to invalidate), and each element's structural hash is sealed
inline at its close tag from the already-sealed child hashes.  Malformed
markup makes the master regex decline, and the character-level scanner
primitives replay the input for a diagnostic identical to the historical
recursive-descent parser's (which survives as the oracle in
:mod:`repro.xmltree.reference`).

Pass ``symbols=`` (a :class:`~repro.automata.compiled.SymbolTable`, e.g.
``pair.symbols``) to intern element labels at parse time: every
``Element.sym`` is then the label's dense id in that table (or ``-1``
for labels outside its alphabet) and ``Document.symbols`` records the
table, letting the validators run their transition lookups on ints
without re-hashing label strings per node.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.guards import (
    Deadline,
    Limits,
    check_depth,
    check_document_size,
    resolve_limits,
)
from repro.xmltree.dom import CHI, Document, Element, Text
from repro.xmltree.lexer import (
    TOK_CDATA,
    TOK_COMMENT,
    TOK_END,
    TOK_START,
    TOK_TEXT,
    Scanner,
    fail_at_markup,
    scan_attributes_slow,
    skip_prolog,
)


def parse(
    text: str,
    *,
    keep_whitespace: bool = False,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
    symbols=None,
) -> Document:
    """Parse an XML document from a string.

    ``limits`` (ambient defaults when ``None``) bounds document size,
    nesting depth, and entity expansions; ``deadline`` is an optional
    caller-owned wall-clock token (one is started from
    ``limits.deadline_seconds`` otherwise).  ``symbols`` enables
    lex-time label interning (see module docstring).
    """
    limits = resolve_limits(limits)
    check_document_size(len(text), limits)
    if deadline is None:
        deadline = limits.deadline()
    scanner = Scanner(text, limits=limits, deadline=deadline)
    doctype_name, internal_subset = skip_prolog(scanner)
    if not scanner.starts_with("<"):
        raise scanner.error("expected the root element")
    root = _parse_tree(scanner, keep_whitespace, limits, symbols)
    while not scanner.at_end():
        scanner.skip_whitespace()
        if scanner.at_end():
            break
        if scanner.starts_with("<!--"):
            scanner.advance(4)
            body = scanner.read_until("-->", what="comment")
            if "--" in body:
                raise scanner.error("'--' is not allowed inside a comment")
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", what="processing instruction")
        else:
            raise scanner.error("content after the root element")
    return Document(root, doctype_name, internal_subset, symbols=symbols)


def parse_file(
    path: str,
    *,
    keep_whitespace: bool = False,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
    symbols=None,
) -> Document:
    """Parse an XML document from a file path (UTF-8).

    The size guard runs against the on-disk byte size *before* the file
    is read, so an oversized document is rejected without buffering it.
    """
    limits = resolve_limits(limits)
    check_document_size(os.path.getsize(path), limits, what=f"file {path!r}")
    with open(path, encoding="utf-8") as handle:
        return parse(
            handle.read(),
            keep_whitespace=keep_whitespace,
            limits=limits,
            deadline=deadline,
            symbols=symbols,
        )


def parse_fragment(
    text: str,
    *,
    keep_whitespace: bool = False,
    limits: Optional[Limits] = None,
    symbols=None,
) -> Element:
    """Parse a single element (no prolog/doctype) and return it."""
    return parse(
        text, keep_whitespace=keep_whitespace, limits=limits, symbols=symbols
    ).root


def _parse_tree(
    scanner: Scanner,
    keep_whitespace: bool,
    limits: Limits,
    symbols,
) -> Element:
    """Parse the root element and its subtree at the cursor.

    Only the first loop iteration can see an empty open-element stack
    (the function returns as soon as the root closes), so the
    ``not elements`` branches are the root-must-be-an-element checks.
    """
    ids = symbols.ids if symbols is not None else None
    deadline = scanner.deadline

    # Parallel stacks for the open elements: the node, the offset of its
    # ``<`` (for unterminated-element diagnostics), and its pending text
    # buffer (text runs merge across comments/PIs/CDATA, so a buffer
    # flushes only at a child element or the close tag).
    elements: list[Element] = []
    open_positions: list[int] = []
    text_buffers: list[list[str]] = []

    while True:
        pos = scanner.pos
        hit = scanner.next_content_match()
        if hit is None:
            if not elements:
                _fail_at_root(scanner)
            fail_at_markup(scanner, elements[-1]._label, open_positions[-1])
        kind, m = hit

        if kind == TOK_TEXT:
            raw = m.group("text")
            scanner.pos = m.end()
            bad = raw.find("]]>")
            if bad >= 0:
                raise scanner.error(
                    "']]>' is not allowed in character data", pos + bad
                )
            if "&" in raw:
                raw = scanner.decode_entities(raw, pos)
            text_buffers[-1].append(raw)

        elif kind == TOK_START:
            check_depth(len(elements) + 1, limits)
            if deadline is not None:
                deadline.tick()
            name, attributes, self_closing = scanner.start_tag_parts(m)
            sym = ids.get(name, -1) if ids is not None else -1
            node = Element._sealed(name, attributes, sym)
            if self_closing:
                node._shash = hash(
                    (
                        name,
                        tuple(sorted(attributes.items()))
                        if attributes
                        else (),
                        (),
                    )
                )
                if not elements:
                    return node
                _flush_text(elements[-1], text_buffers[-1], keep_whitespace)
                _attach(elements[-1], node)
            else:
                elements.append(node)
                open_positions.append(pos)
                text_buffers.append([])

        elif kind == TOK_END:
            if not elements:
                _fail_at_root(scanner)
            node = elements[-1]
            name = m.group("ename")
            if name != node._label:
                raise scanner.error(
                    f"mismatched close tag </{name}> for <{node._label}>",
                    m.end("ename"),
                )
            scanner.pos = m.end()
            _flush_text(node, text_buffers[-1], keep_whitespace)
            attrs = node._attributes
            node._shash = hash(
                (
                    node._label,
                    tuple(sorted(attrs.items())) if attrs else (),
                    tuple(child._shash for child in node.children),
                )
            )
            elements.pop()
            open_positions.pop()
            text_buffers.pop()
            if not elements:
                return node
            _flush_text(elements[-1], text_buffers[-1], keep_whitespace)
            _attach(elements[-1], node)

        elif kind == TOK_COMMENT:
            if not elements:
                _fail_at_root(scanner)
            scanner.pos = m.end()
            if "--" in m.group("comment"):
                raise scanner.error("'--' is not allowed inside a comment")

        elif kind == TOK_CDATA:
            if not elements:
                _fail_at_root(scanner)
            scanner.pos = m.end()
            text_buffers[-1].append(m.group("cdata"))

        else:  # TOK_PI
            if not elements:
                _fail_at_root(scanner)
            scanner.pos = m.end()


def _fail_at_root(scanner: Scanner) -> None:
    """Replay a non-start-tag construct at the root position with the
    character-level primitives for the historical diagnostic (the root
    must be an element; comments/PIs/DOCTYPE were consumed as prolog).
    Always raises."""
    scanner.expect("<")
    name = scanner.read_name()
    scan_attributes_slow(scanner, name)
    if not scanner.match("/>"):
        scanner.expect(">")
    raise AssertionError(
        "master regex rejected a root tag the character-level scanner "
        f"accepts at offset {scanner.pos}"
    )


def _attach(parent: Element, child) -> None:
    """Append without the mutation-tracked API: the tree under
    construction carries no stale cached state to invalidate."""
    child.parent = parent
    child.index = len(parent.children)
    parent.children.append(child)


def _flush_text(
    parent: Element, parts: list[str], keep_whitespace: bool
) -> None:
    if not parts:
        return
    value = "".join(parts)
    parts.clear()
    if not keep_whitespace and value.strip() == "":
        return
    node = Text(value)
    node._shash = hash((CHI, value))
    _attach(parent, node)
