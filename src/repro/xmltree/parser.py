"""Recursive-descent XML parser producing :class:`~repro.xmltree.dom.Document`.

Supports the XML 1.0 constructs the reproduction needs: prolog, DOCTYPE
(with internal subset captured verbatim for the DTD front-end), elements,
attributes, character data with entity references, CDATA sections,
comments and processing instructions.  Namespace prefixes are kept as part
of names (no expansion), matching the paper's label-based tree model.

By default whitespace-only text between elements is dropped — the paper's
ordered labelled trees have χ leaves only for genuine simple content, and
Xerces-style validators likewise treat such runs as ignorable in element
content.  Pass ``keep_whitespace=True`` to retain them.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import XMLSyntaxError
from repro.guards import (
    Deadline,
    Limits,
    check_depth,
    check_document_size,
    resolve_limits,
)
from repro.xmltree.dom import Document, Element, Text
from repro.xmltree.lexer import Scanner


def parse(
    text: str,
    *,
    keep_whitespace: bool = False,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
) -> Document:
    """Parse an XML document from a string.

    ``limits`` (ambient defaults when ``None``) bounds document size,
    nesting depth, and entity expansions; ``deadline`` is an optional
    caller-owned wall-clock token (one is started from
    ``limits.deadline_seconds`` otherwise).
    """
    limits = resolve_limits(limits)
    check_document_size(len(text), limits)
    if deadline is None:
        deadline = limits.deadline()
    return _Parser(text, keep_whitespace, limits, deadline).parse_document()


def parse_file(
    path: str,
    *,
    keep_whitespace: bool = False,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
) -> Document:
    """Parse an XML document from a file path (UTF-8).

    The size guard runs against the on-disk byte size *before* the file
    is read, so an oversized document is rejected without buffering it.
    """
    limits = resolve_limits(limits)
    check_document_size(os.path.getsize(path), limits, what=f"file {path!r}")
    with open(path, encoding="utf-8") as handle:
        return parse(
            handle.read(),
            keep_whitespace=keep_whitespace,
            limits=limits,
            deadline=deadline,
        )


def parse_fragment(
    text: str,
    *,
    keep_whitespace: bool = False,
    limits: Optional[Limits] = None,
) -> Element:
    """Parse a single element (no prolog/doctype) and return it."""
    return parse(text, keep_whitespace=keep_whitespace, limits=limits).root


class _Parser:
    def __init__(
        self,
        text: str,
        keep_whitespace: bool,
        limits: Optional[Limits] = None,
        deadline: Optional[Deadline] = None,
    ):
        self.limits = resolve_limits(limits)
        self.scanner = Scanner(text, limits=self.limits, deadline=deadline)
        self.keep_whitespace = keep_whitespace

    # -- document structure ---------------------------------------------

    def parse_document(self) -> Document:
        scanner = self.scanner
        doctype_name = ""
        internal_subset = ""
        scanner.skip_whitespace()
        if scanner.starts_with("<?xml"):
            self._skip_pi()
        while True:
            scanner.skip_whitespace()
            if scanner.starts_with("<!--"):
                self._skip_comment()
            elif scanner.starts_with("<?"):
                self._skip_pi()
            elif scanner.starts_with("<!DOCTYPE"):
                doctype_name, internal_subset = self._parse_doctype()
            else:
                break
        if not scanner.starts_with("<"):
            raise scanner.error("expected the root element")
        root = self._parse_element(1)
        while not scanner.at_end():
            scanner.skip_whitespace()
            if scanner.at_end():
                break
            if scanner.starts_with("<!--"):
                self._skip_comment()
            elif scanner.starts_with("<?"):
                self._skip_pi()
            else:
                raise scanner.error("content after the root element")
        return Document(root, doctype_name, internal_subset)

    def _parse_doctype(self) -> tuple[str, str]:
        scanner = self.scanner
        scanner.expect("<!DOCTYPE")
        scanner.skip_whitespace()
        name = scanner.read_name()
        scanner.skip_whitespace()
        # External identifier (ignored beyond syntax).
        if scanner.match("SYSTEM"):
            scanner.skip_whitespace()
            scanner.read_quoted()
            scanner.skip_whitespace()
        elif scanner.match("PUBLIC"):
            scanner.skip_whitespace()
            scanner.read_quoted()
            scanner.skip_whitespace()
            scanner.read_quoted()
            scanner.skip_whitespace()
        subset = ""
        if scanner.match("["):
            subset = self._read_internal_subset()
            scanner.skip_whitespace()
        scanner.expect(">")
        return name, subset

    def _read_internal_subset(self) -> str:
        """Capture the internal subset verbatim up to the matching ``]``.

        Quoted literals and comments may contain ``]``, so we scan rather
        than string-find.
        """
        scanner = self.scanner
        start = scanner.pos
        while True:
            ch = scanner.peek()
            if ch == "":
                raise scanner.error("unterminated DOCTYPE internal subset")
            if ch == "]":
                subset = scanner.text[start : scanner.pos]
                scanner.advance()
                return subset
            if ch in ("'", '"'):
                scanner.read_quoted()
            elif scanner.starts_with("<!--"):
                self._skip_comment()
            else:
                scanner.advance()

    # -- elements ----------------------------------------------------------

    def _parse_element(self, depth: int) -> Element:
        scanner = self.scanner
        check_depth(depth, self.limits)
        if scanner.deadline is not None:
            scanner.deadline.tick()
        open_pos = scanner.pos
        scanner.expect("<")
        name = scanner.read_name()
        attributes = self._parse_attributes(name)
        if scanner.match("/>"):
            node = Element(name, attributes)
            node.structural_hash()
            return node
        scanner.expect(">")
        node = Element(name, attributes)
        self._parse_content(node, open_pos, depth)
        # Seal the structural hash bottom-up while the subtree is hot:
        # the children were sealed by their own parses, so this is O(1)
        # amortized per node and parsed documents arrive fully
        # fingerprinted for the memoized pair-validation layer.
        node.structural_hash()
        return node

    def _parse_attributes(self, element_name: str) -> dict[str, str]:
        scanner = self.scanner
        attributes: dict[str, str] = {}
        while True:
            had_space = scanner.skip_whitespace()
            ch = scanner.peek()
            if ch in (">", "/") or ch == "":
                return attributes
            if not had_space:
                raise scanner.error(
                    f"expected whitespace before attribute in <{element_name}>"
                )
            attr_pos = scanner.pos
            attr_name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect("=")
            scanner.skip_whitespace()
            value_pos = scanner.pos + 1
            raw_value = scanner.read_quoted()
            if attr_name in attributes:
                raise scanner.error(
                    f"duplicate attribute {attr_name!r} in <{element_name}>",
                    attr_pos,
                )
            attributes[attr_name] = scanner.decode_entities(raw_value, value_pos)

    def _parse_content(self, node: Element, open_pos: int, depth: int) -> None:
        scanner = self.scanner
        text_parts: list[str] = []
        text_start = scanner.pos

        def flush_text() -> None:
            if not text_parts:
                return
            value = "".join(text_parts)
            text_parts.clear()
            if value.strip() == "" and not self.keep_whitespace:
                return
            node.append(Text(value))

        while True:
            if scanner.at_end():
                raise scanner.error(
                    f"unterminated element <{node.label}>", open_pos
                )
            if scanner.starts_with("</"):
                flush_text()
                scanner.advance(2)
                close_name = scanner.read_name()
                if close_name != node.label:
                    raise scanner.error(
                        f"mismatched close tag </{close_name}> for "
                        f"<{node.label}>"
                    )
                scanner.skip_whitespace()
                scanner.expect(">")
                return
            if scanner.starts_with("<!--"):
                self._skip_comment()
                continue
            if scanner.starts_with("<![CDATA["):
                scanner.advance(len("<![CDATA["))
                text_parts.append(scanner.read_until("]]>", what="CDATA section"))
                continue
            if scanner.starts_with("<?"):
                self._skip_pi()
                continue
            if scanner.starts_with("<"):
                flush_text()
                node.append(self._parse_element(depth + 1))
                text_start = scanner.pos
                continue
            # Character data up to the next markup or entity boundary.
            chunk_start = scanner.pos
            while not scanner.at_end() and scanner.peek() not in ("<",):
                scanner.advance()
            raw = scanner.text[chunk_start : scanner.pos]
            if "]]>" in raw:
                raise scanner.error(
                    "']]>' is not allowed in character data",
                    chunk_start + raw.find("]]>"),
                )
            text_parts.append(scanner.decode_entities(raw, chunk_start))
            text_start = chunk_start

    # -- ignorable constructs -----------------------------------------------

    def _skip_comment(self) -> None:
        scanner = self.scanner
        scanner.expect("<!--")
        body = scanner.read_until("-->", what="comment")
        if "--" in body:
            raise scanner.error("'--' is not allowed inside a comment")

    def _skip_pi(self) -> None:
        scanner = self.scanner
        scanner.expect("<?")
        scanner.read_until("?>", what="processing instruction")
