"""Serialization of documents back to XML text.

``serialize`` produces a parseable rendering of a tree; a parse →
serialize → parse round trip yields a structurally equal tree (attribute
order is preserved because the DOM stores attributes in insertion order).
An optional pretty-printing mode indents element-only content; elements
with text children are rendered inline so no character data is perturbed.
"""

from __future__ import annotations

from typing import Union

from repro.xmltree.dom import Document, Element, Text


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
    )


def serialize(
    node: Union[Document, Element],
    *,
    indent: str | None = None,
    xml_declaration: bool = False,
) -> str:
    """Render a document or element subtree as XML text.

    Args:
        node: the document or element to render.
        indent: if given (e.g. ``"  "``), pretty-print with that unit.
        xml_declaration: prepend ``<?xml version="1.0"?>``.
    """
    root = node.root if isinstance(node, Document) else node
    lines: list[str] = []
    if xml_declaration:
        lines.append('<?xml version="1.0" encoding="UTF-8"?>')
    if indent is None:
        text = _render_inline(root)
        if xml_declaration:
            return "\n".join(lines) + "\n" + text
        return text
    _render_pretty(root, lines, indent, 0)
    return "\n".join(lines) + "\n"


def write_file(node: Union[Document, Element], path: str, *,
               indent: str | None = "  ") -> int:
    """Serialize to a UTF-8 file; returns the byte count written."""
    text = serialize(node, indent=indent, xml_declaration=True)
    data = text.encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


def _open_tag(element: Element) -> str:
    pieces = [f"<{element.label}"]
    attrs = element._attributes
    if attrs:
        for name, value in attrs.items():
            pieces.append(f' {name}="{escape_attribute(value)}"')
    return "".join(pieces)


def _render_inline(element: Element) -> str:
    if not element.children:
        return _open_tag(element) + "/>"
    body: list[str] = []
    for child in element.children:
        if isinstance(child, Text):
            body.append(escape_text(child.value))
        else:
            body.append(_render_inline(child))
    return f"{_open_tag(element)}>{''.join(body)}</{element.label}>"


def _render_pretty(element: Element, lines: list[str], indent: str,
                   depth: int) -> None:
    pad = indent * depth
    if not element.children:
        lines.append(pad + _open_tag(element) + "/>")
        return
    if any(isinstance(child, Text) for child in element.children):
        # Mixed/simple content: render the whole element inline so the
        # character data survives a round trip unchanged.
        lines.append(pad + _render_inline(element))
        return
    lines.append(pad + _open_tag(element) + ">")
    for child in element.children:
        assert isinstance(child, Element)
        _render_pretty(child, lines, indent, depth + 1)
    lines.append(f"{pad}</{element.label}>")
