"""Character-level scanner for the XML parser.

The scanner owns the raw text and the position bookkeeping (offset, line,
column) and exposes the small set of primitives the recursive-descent
parser in :mod:`repro.xmltree.parser` is built from: peeking, literal
matching, name scanning, and scan-until-delimiter.  Keeping this separate
from the grammar keeps both halves short and independently testable.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import EntityExpansionError, XMLSyntaxError
from repro.guards import Deadline, Limits, resolve_limits

# Simplified XML 1.0 name characters.  Colons are accepted so qualified
# names like ``xsd:element`` pass through verbatim (we do not expand
# namespaces; see DESIGN.md section 6).
_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789-.")

_WHITESPACE = set(" \t\r\n")

# The five predefined XML entities.
PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}


def is_name(text: str) -> bool:
    """True iff ``text`` is a valid (simplified) XML name."""
    if not text or text[0] not in _NAME_START:
        return False
    return all(ch in _NAME_CHARS for ch in text)


class Scanner:
    """Cursor over XML source text with line/column tracking.

    The scanner also hosts the per-document resource guards shared by
    both parsing front-ends (tree and events): the entity-expansion
    counter and the optional wall-clock :class:`Deadline`.  Both are
    off the hot path — one integer compare per expansion, one
    ``is not None`` test per tick site.
    """

    def __init__(
        self,
        text: str,
        *,
        limits: Optional[Limits] = None,
        deadline: Optional[Deadline] = None,
    ):
        self.text = text
        self.pos = 0
        self.limits = resolve_limits(limits)
        self.deadline = deadline
        self.entity_expansions = 0
        self._max_expansions = self.limits.max_entity_expansions

    # -- position reporting -------------------------------------------------

    def line_column(self, pos: int | None = None) -> tuple[int, int]:
        """1-based (line, column) of ``pos`` (default: current position).

        Computed on demand (errors are rare), so the scanner holds no
        per-line index — this keeps streaming validation's memory
        independent of document size.
        """
        if pos is None:
            pos = self.pos
        pos = min(pos, len(self.text))
        line = self.text.count("\n", 0, pos) + 1
        last_newline = self.text.rfind("\n", 0, pos)
        return line, pos - last_newline

    def error(self, message: str, pos: int | None = None) -> XMLSyntaxError:
        line, column = self.line_column(pos)
        return XMLSyntaxError(message, line, column)

    # -- basic cursor operations --------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, ahead: int = 0) -> str:
        """The character ``ahead`` positions past the cursor, or ``""``."""
        index = self.pos + ahead
        if index < len(self.text):
            return self.text[index]
        return ""

    def starts_with(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def expect(self, literal: str) -> None:
        """Consume ``literal`` or raise a syntax error."""
        if not self.starts_with(literal):
            found = self.text[self.pos : self.pos + len(literal)] or "<EOF>"
            raise self.error(f"expected {literal!r}, found {found!r}")
        self.pos += len(literal)

    def match(self, literal: str) -> bool:
        """Consume ``literal`` if present; report whether it was."""
        if self.starts_with(literal):
            self.pos += len(literal)
            return True
        return False

    # -- token-level helpers ------------------------------------------------

    def skip_whitespace(self) -> bool:
        """Skip over whitespace; report whether any was skipped."""
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _WHITESPACE:
            self.pos += 1
        return self.pos > start

    def read_name(self) -> str:
        """Read an XML name at the cursor or raise."""
        start = self.pos
        if self.at_end() or self.text[self.pos] not in _NAME_START:
            raise self.error("expected an XML name")
        self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]

    def read_until(self, delimiter: str, *, what: str) -> str:
        """Read up to (not including) ``delimiter``, consuming it.

        ``what`` names the construct for error messages (e.g. "comment").
        """
        end = self.text.find(delimiter, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}: missing {delimiter!r}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(delimiter)
        return chunk

    def read_quoted(self) -> str:
        """Read a single- or double-quoted literal, returning its body."""
        quote = self.peek()
        if quote not in ("'", '"'):
            raise self.error("expected a quoted literal")
        self.advance()
        return self.read_until(quote, what="quoted literal")

    # -- entity decoding ----------------------------------------------------

    def decode_entities(self, raw: str, start_pos: int) -> str:
        """Expand character and predefined entity references in ``raw``.

        ``start_pos`` is the offset of ``raw`` within the source text and
        is used only for error positions.
        """
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            semi = raw.find(";", i + 1)
            if semi < 0:
                raise self.error("unterminated entity reference", start_pos + i)
            body = raw[i + 1 : semi]
            out.append(self._expand_entity(body, start_pos + i))
            i = semi + 1
        return "".join(out)

    def _expand_entity(self, body: str, pos: int) -> str:
        self.entity_expansions += 1
        if (
            self._max_expansions is not None
            and self.entity_expansions > self._max_expansions
        ):
            line, column = self.line_column(pos)
            raise EntityExpansionError(
                f"more than {self._max_expansions} entity expansions "
                f"(line {line}, column {column})"
            )
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except (ValueError, OverflowError):
                raise self.error(f"bad character reference &{body};", pos)
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except (ValueError, OverflowError):
                raise self.error(f"bad character reference &{body};", pos)
        try:
            return PREDEFINED_ENTITIES[body]
        except KeyError:
            raise self.error(f"unknown entity &{body};", pos) from None
