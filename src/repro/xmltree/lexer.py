"""Regex-bulk scanner for the XML parser.

The scanner owns the raw text and the position bookkeeping and exposes
the primitives the parsing front-ends (:mod:`repro.xmltree.parser` and
:mod:`repro.xmltree.events`) are built from.  Since the parse path is
the dominant cost of every validation mode, the primitives are built on
compiled regular expressions that consume input in bulk slices instead
of character-at-a-time Python loops:

* :data:`MASTER_RE` — one compiled alternation over the content-level
  constructs (text run, start tag *including its attributes*, close
  tag, comment, CDATA section, processing instruction).  A whole start
  tag — name, attribute list, self-closing slash — is consumed by a
  single C-level match.
* Malformed input falls back to the character-level primitives
  (:meth:`Scanner.read_name`, :meth:`Scanner.expect`, ...), which
  produce exactly the diagnostics the pre-regex implementation did —
  the bulk path never has to report an error itself, it just declines
  to match.
* Line/column reporting is backed by a newline index built once per
  document on the first request (errors are rare) and answered in
  O(log #lines) thereafter, instead of an O(document) ``rfind`` per
  request.
* Entity decoding runs only when a ``&`` was actually seen and raises
  the typed :class:`~repro.errors.UnterminatedEntityError` when a
  reference has no ``;`` before the next ``&`` or the end of the token.

:func:`iter_tokens` exposes the lexical layer directly as a token
stream; ``tests/xmltree/test_token_equivalence.py`` holds it equal to
the character-at-a-time executable specification in
:mod:`repro.xmltree.reference`.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from typing import Iterator, Optional

from repro.errors import (
    EntityExpansionError,
    UnterminatedEntityError,
    XMLSyntaxError,
)
from repro.guards import Deadline, Limits, check_depth, resolve_limits

# Simplified XML 1.0 name characters.  Colons are accepted so qualified
# names like ``xsd:element`` pass through verbatim (we do not expand
# namespaces; see DESIGN.md section 6).
_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789-.")

_WHITESPACE = set(" \t\r\n")

#: The name production as a regex fragment (same character set as the
#: ``_NAME_START``/``_NAME_CHARS`` tables the fallback path scans with).
NAME_PATTERN = r"[A-Za-z_:][A-Za-z0-9_:.\-]*"

_NAME_RE = re.compile(NAME_PATTERN)
_WS_RE = re.compile(r"[ \t\r\n]+")

#: One attribute: mandatory leading whitespace, name, ``=`` with
#: optional surrounding whitespace, quoted value (either quote kind).
_ATTR_PATTERN = (
    r"[ \t\r\n]+" + NAME_PATTERN +
    r"[ \t\r\n]*=[ \t\r\n]*(?:\"[^\"]*\"|'[^']*')"
)

#: The master content-level alternation.  Arms are ordered by expected
#: frequency (text and start tags dominate every corpus); they are
#: mutually exclusive at any position, so order affects only speed.
#: A failure to match at a non-EOF position means malformed markup —
#: the caller re-diagnoses with the character-level primitives.
MASTER_RE = re.compile(
    r"(?P<text>[^<]+)"
    r"|<(?P<sname>" + NAME_PATTERN + r")(?P<attrs>(?:" + _ATTR_PATTERN +
    r")*)[ \t\r\n]*(?P<selfclose>/?)>"
    r"|</(?P<ename>" + NAME_PATTERN + r")[ \t\r\n]*>"
    r"|<!--(?P<comment>.*?)-->"
    r"|<!\[CDATA\[(?P<cdata>.*?)\]\]>"
    r"|<\?(?P<pi>.*?)\?>",
    re.DOTALL,
)

#: Single-construct compilations of the master arms, byte-for-byte the
#: same patterns (same group names, same acceptance), for callers that
#: already dispatched on the construct kind — the fused validation
#: kernel (:mod:`repro.core.castkernel`) branches on the character
#: after ``<`` and then matches only the one arm that can apply,
#: instead of running the full alternation.
START_TAG_RE = re.compile(
    r"<(?P<sname>" + NAME_PATTERN + r")(?P<attrs>(?:" + _ATTR_PATTERN +
    r")*)[ \t\r\n]*(?P<selfclose>/?)>"
)
END_TAG_RE = re.compile(r"</(?P<ename>" + NAME_PATTERN + r")[ \t\r\n]*>")
COMMENT_RE = re.compile(r"<!--(?P<comment>.*?)-->", re.DOTALL)
CDATA_RE = re.compile(r"<!\[CDATA\[(?P<cdata>.*?)\]\]>", re.DOTALL)
PI_RE = re.compile(r"<\?(?P<pi>.*?)\?>", re.DOTALL)

#: Leaf fast path: an attribute-free start tag, entity-free and
#: bracket-free text, and the matching close tag — one C-level match
#: consumes a whole leaf element.  ``]`` is excluded from the text so
#: the ``]]>``-in-character-data check stays on the general path; a
#: declined match costs one failed anchor and falls through.  The
#: compiled kernel backend implements the same acceptance in C
#: (``leaf_scan``), asserted equal by the kernel self-test and fuzzer.
LEAF_RE = re.compile(
    r"<(" + NAME_PATTERN + r")>([^<&\]]*)</\1[ \t\r\n]*>"
)

#: An XML whitespace run.  The fused kernel lets indentation ride along
#: with its fast paths: whitespace-only character data between markup
#: is dropped (or drained) without ever becoming a text token.
XML_WS_RE = re.compile(r"[ \t\r\n]+")

#: The *skim* alternation: markup shapes only, no content capture.  The
#: byte-level skip path (:meth:`Scanner.skim_subtree`) needs to know
#: just four things about each construct — is it an open tag, a close
#: tag, self-closing, or opaque (comment/CDATA/PI)?  Names are matched
#: but never extracted (dispatch reads group *spans*, not strings), the
#: attribute list is validated as a block without capturing pairs, and
#: text between markup is jumped over with ``str.find('<')`` rather
#: than matched at all.  The comment/CDATA/PI arms are the hardening
#: against ``<``/``>`` inside those constructs: their lazy bodies
#: consume to the real terminator, exactly like :data:`MASTER_RE`; a
#: ``>`` inside an attribute value is covered by the quoted-value
#: pattern in the open-tag arm.
_SKIM_RE = re.compile(
    r"<(?:"
    r"(?P<skopen>" + NAME_PATTERN + r")(?:" + _ATTR_PATTERN +
    r")*[ \t\r\n]*(?P<skself>/?)>"
    r"|/(?P<skclose>" + NAME_PATTERN + r")[ \t\r\n]*>"
    r"|!--(?P<skcomment>.*?)-->"
    r"|!\[CDATA\[.*?\]\]>"
    r"|\?.*?\?>"
    r")",
    re.DOTALL,
)

#: Capturing sub-regex used to pull the attributes out of a start tag
#: that the master regex already validated in bulk.
_ATTR_RE = re.compile(
    r"[ \t\r\n]+(" + NAME_PATTERN +
    r")[ \t\r\n]*=[ \t\r\n]*(?:\"([^\"]*)\"|'([^']*)')"
)

#: Token kinds, dense ints so dispatch is an integer compare.
TOK_TEXT = 0
TOK_START = 1
TOK_END = 2
TOK_COMMENT = 3
TOK_CDATA = 4
TOK_PI = 5

#: Map ``Match.lastindex`` of a master match to its token kind.  Each
#: arm's last-closing capture group identifies it: the text arm closes
#: ``text`` last, the start arm ``selfclose``, and so on.  Verified by
#: a unit test against every arm.
_KIND_BY_LASTINDEX = {
    MASTER_RE.groupindex["text"]: TOK_TEXT,
    MASTER_RE.groupindex["selfclose"]: TOK_START,
    MASTER_RE.groupindex["ename"]: TOK_END,
    MASTER_RE.groupindex["comment"]: TOK_COMMENT,
    MASTER_RE.groupindex["cdata"]: TOK_CDATA,
    MASTER_RE.groupindex["pi"]: TOK_PI,
}

# The five predefined XML entities.
PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}


def is_name(text: str) -> bool:
    """True iff ``text`` is a valid (simplified) XML name."""
    if not text or text[0] not in _NAME_START:
        return False
    return all(ch in _NAME_CHARS for ch in text)


class Scanner:
    """Cursor over XML source text with line/column tracking.

    The scanner also hosts the per-document resource guards shared by
    both parsing front-ends (tree and events): the entity-expansion
    counter and the optional wall-clock :class:`Deadline`.  Both are
    off the hot path — one integer compare per expansion, one
    ``is not None`` test per tick site.
    """

    def __init__(
        self,
        text: str,
        *,
        limits: Optional[Limits] = None,
        deadline: Optional[Deadline] = None,
    ):
        self.text = text
        self.pos = 0
        self.limits = resolve_limits(limits)
        self.deadline = deadline
        self.entity_expansions = 0
        self._max_expansions = self.limits.max_entity_expansions
        #: offsets of every ``\n``, built lazily on the first
        #: line/column request (errors are rare; token scanning never
        #: touches it).
        self._newline_index: Optional[list[int]] = None
        #: Cached master-regex ``finditer`` sweep and the position its
        #: next match is expected at (see :meth:`next_content_match`).
        self._finditer: Optional[Iterator["re.Match[str]"]] = None
        self._finditer_pos = -1

    # -- position reporting -------------------------------------------------

    def line_column(self, pos: int | None = None) -> tuple[int, int]:
        """1-based (line, column) of ``pos`` (default: current position).

        The first request builds a newline index for the whole document
        (one bulk ``finditer`` pass); every request — including the
        first — is then an O(log #lines) bisection instead of the old
        O(document) ``count`` + ``rfind`` pair per call.
        """
        if pos is None:
            pos = self.pos
        pos = min(pos, len(self.text))
        index = self._newline_index
        if index is None:
            index = self._newline_index = [
                m.start() for m in re.finditer("\n", self.text)
            ]
        line = bisect_right(index, pos - 1)
        last_newline = index[line - 1] if line else -1
        return line + 1, pos - last_newline

    def error(self, message: str, pos: int | None = None,
              kind: type = XMLSyntaxError) -> XMLSyntaxError:
        line, column = self.line_column(pos)
        return kind(message, line, column)

    # -- basic cursor operations --------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, ahead: int = 0) -> str:
        """The character ``ahead`` positions past the cursor, or ``""``."""
        index = self.pos + ahead
        if index < len(self.text):
            return self.text[index]
        return ""

    def starts_with(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def expect(self, literal: str) -> None:
        """Consume ``literal`` or raise a syntax error."""
        if not self.starts_with(literal):
            found = self.text[self.pos : self.pos + len(literal)] or "<EOF>"
            raise self.error(f"expected {literal!r}, found {found!r}")
        self.pos += len(literal)

    def match(self, literal: str) -> bool:
        """Consume ``literal`` if present; report whether it was."""
        if self.starts_with(literal):
            self.pos += len(literal)
            return True
        return False

    # -- token-level helpers ------------------------------------------------

    def skip_whitespace(self) -> bool:
        """Skip over whitespace; report whether any was skipped."""
        m = _WS_RE.match(self.text, self.pos)
        if m is None:
            return False
        self.pos = m.end()
        return True

    def read_name(self) -> str:
        """Read an XML name at the cursor or raise."""
        m = _NAME_RE.match(self.text, self.pos)
        if m is None:
            raise self.error("expected an XML name")
        self.pos = m.end()
        return m.group()

    def read_until(self, delimiter: str, *, what: str) -> str:
        """Read up to (not including) ``delimiter``, consuming it.

        ``what`` names the construct for error messages (e.g. "comment").
        """
        end = self.text.find(delimiter, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}: missing {delimiter!r}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(delimiter)
        return chunk

    def read_quoted(self) -> str:
        """Read a single- or double-quoted literal, returning its body."""
        quote = self.peek()
        if quote not in ("'", '"'):
            raise self.error("expected a quoted literal")
        self.advance()
        return self.read_until(quote, what="quoted literal")

    # -- bulk scanning ------------------------------------------------------

    def next_content_match(self) -> Optional[tuple[int, "re.Match[str]"]]:
        """Match the master regex at the cursor.

        Returns ``(kind, match)`` without advancing, or ``None`` when no
        arm matches — EOF or malformed markup; the caller re-diagnoses
        with the character-level primitives for an exact error.

        Matches come from one ``finditer`` sweep over the document
        rather than a fresh anchored ``match`` per token: while the
        consumer advances token-to-token (``pos == m.end()`` of the
        previous match), successive tokens are successive hits of the
        same C-level iterator.  Correctness is guarded by *gap
        detection* — ``finditer`` has search semantics, so a hit that
        does not start exactly at the cursor means the master declined
        at the cursor (malformed markup); the sweep is discarded and
        ``None`` returned, exactly as the anchored ``match`` would
        have.  Any out-of-band cursor move (byte-level skims, slow-path
        replays) simply reseeds the sweep on the next call.
        """
        pos = self.pos
        if self._finditer_pos != pos or self._finditer is None:
            self._finditer = MASTER_RE.finditer(self.text, pos)
        m = next(self._finditer, None)
        if m is None or m.start() != pos:
            # EOF, or the master declined at the cursor (the next hit,
            # if any, starts past a malformed region).  Drop the sweep:
            # the caller repositions or raises.
            self._finditer = None
            self._finditer_pos = -1
            return None
        self._finditer_pos = m.end()
        return _KIND_BY_LASTINDEX[m.lastindex], m

    def start_tag_parts(
        self, m: "re.Match[str]"
    ) -> tuple[str, Optional[dict[str, str]], bool]:
        """``(name, attributes, self_closing)`` of a bulk-matched start
        tag; advances the cursor past the tag.

        ``attributes`` is ``None`` for the (common) attribute-less tag,
        so the DOM layer can share one empty sentinel instead of
        allocating a dict per element.  Entity references in values are
        decoded only when a ``&`` is present; duplicate names raise
        with the position of the second occurrence.
        """
        attrs_src = m.group("attrs")
        attributes: Optional[dict[str, str]] = None
        if attrs_src:
            attributes = {}
            base = m.start("attrs")
            for am in _ATTR_RE.finditer(attrs_src):
                name = am.group(1)
                value = am.group(2)
                value_group = 2
                if value is None:
                    value = am.group(3)
                    value_group = 3
                if name in attributes:
                    raise self.error(
                        f"duplicate attribute {name!r} in "
                        f"<{m.group('sname')}>",
                        base + am.start(1),
                    )
                if "&" in value:
                    value = self.decode_entities(
                        value, base + am.start(value_group)
                    )
                attributes[name] = value
        self.pos = m.end()
        return m.group("sname"), attributes, m.group("selfclose") == "/"

    # -- byte-level subtree skimming ----------------------------------------

    def skim_subtree(
        self,
        pos: Optional[int] = None,
        *,
        label: str,
        base_depth: int = 1,
        trusted: bool = False,
    ) -> int:
        """Fast-forward past the rest of an open element's subtree.

        The cursor (or ``pos``) must sit on the first content byte after
        the start tag of ``label``, which is still open; on return the
        cursor sits on the first byte after the matching ``</label>``
        and the new position is also returned.  Nothing in between is
        tokenized: no token or event objects are allocated, no entities
        are decoded, no names are interned — the subtree's *verdict* is
        already known (a subsumed pair in the cast), so only its extent
        matters.

        The default scanner runs :data:`_SKIM_RE` — markup shapes only —
        over every tag, jumping across text with ``str.find('<')`` and
        counting depth.  It is hardened against ``<``/``>`` inside
        comments, CDATA sections, PIs, and quoted attribute values (each
        has a dedicated arm or pattern), and it still rejects ``]]>`` in
        character data, ``--`` in comments, malformed tags, truncation,
        and a final close tag whose name differs from ``label``.  It
        does **not** match up intermediate open/close tag *names* (that
        would mean extracting them) and never sees entity references,
        so a malformed-but-balanced subtree can skim cleanly where the
        full lexer would raise — acceptable under the paper's premise
        that the input is valid w.r.t. the source schema.

        ``trusted=True`` asserts well-formedness outright and
        byte-searches for ``</label`` / ``<label`` occurrences (with a
        name-boundary check so ``<items`` never matches while skimming
        ``<item>``), tracking same-name nesting only.  It assumes the
        skimmed region hides no ``</label`` inside comments, CDATA,
        PIs, or attribute values — the caller's contract.

        Resource guards stay live in both modes, advanced per skimmed
        tag rather than per byte: the wall-clock deadline ticks on every
        tag, and ``Limits.max_tree_depth`` is checked as depth grows
        (``base_depth`` is the absolute depth of the skim root; trusted
        mode can only see — and therefore only guards — same-name
        nesting).  The document byte budget was enforced before any
        scanning began.
        """
        if pos is None:
            pos = self.pos
        if trusted:
            return self._skim_trusted(pos, label, base_depth)
        text = self.text
        limits = self.limits
        deadline = self.deadline
        depth = 1
        while True:
            lt = text.find("<", pos)
            if lt < 0:
                self.pos = len(text)
                raise self.error(f"unterminated element <{label}>", pos)
            bad = text.find("]]>", pos, lt)
            if bad >= 0:
                raise self.error(
                    "']]>' is not allowed in character data", bad
                )
            m = _SKIM_RE.match(text, lt)
            if m is None:
                raise self.error(
                    "malformed markup inside byte-skipped subtree", lt
                )
            pos = m.end()
            open_start = m.start("skopen")
            if open_start >= 0:
                if deadline is not None:
                    deadline.tick()
                if m.start("skself") == m.end("skself"):
                    depth += 1
                    check_depth(base_depth + depth - 1, limits)
                continue
            close_start = m.start("skclose")
            if close_start >= 0:
                if deadline is not None:
                    deadline.tick()
                depth -= 1
                if depth == 0:
                    close_end = m.end("skclose")
                    if close_end - close_start != len(
                        label
                    ) or not text.startswith(label, close_start):
                        raise self.error(
                            "mismatched close tag "
                            f"</{text[close_start:close_end]}> "
                            f"for <{label}>",
                            close_end,
                        )
                    self.pos = pos
                    return pos
                continue
            body_start = m.start("skcomment")
            if body_start >= 0 and text.find(
                "--", body_start, m.end("skcomment")
            ) >= 0:
                raise self.error(
                    "'--' is not allowed inside a comment", body_start
                )
            # CDATA / PI: opaque, fully consumed by their lazy arms.

    def _skim_trusted(self, pos: int, label: str, base_depth: int) -> int:
        """Byte-search skim: find ``</label``/``<label`` occurrences and
        track same-name nesting.  See :meth:`skim_subtree`."""
        text = self.text
        n = len(text)
        close_pat = "</" + label
        open_pat = "<" + label
        deadline = self.deadline
        limits = self.limits
        depth = 1
        counted = pos  # opens below this offset are already counted
        search = pos
        while True:
            close = text.find(close_pat, search)
            if close < 0:
                self.pos = n
                raise self.error(f"unterminated element <{label}>", pos)
            boundary = close + len(close_pat)
            if boundary < n and text[boundary] in _NAME_CHARS:
                # A longer name (e.g. </items> while skimming <item>).
                search = boundary
                continue
            scan = counted
            while True:
                opened = text.find(open_pat, scan, close)
                if opened < 0:
                    break
                after = opened + len(open_pat)
                scan = after
                if after < close and text[after] in _NAME_CHARS:
                    continue  # longer name, e.g. <items>
                gt = text.find(">", after)
                if gt < 0:
                    self.pos = n
                    raise self.error(
                        f"unterminated element <{label}>", opened
                    )
                if deadline is not None:
                    deadline.tick()
                if text[gt - 1] != "/":
                    depth += 1
                    check_depth(base_depth + depth - 1, limits)
            counted = close
            if deadline is not None:
                deadline.tick()
            depth -= 1
            if depth == 0:
                gt = text.find(">", boundary)
                if gt < 0:
                    self.pos = n
                    raise self.error(
                        f"unterminated element <{label}>", close
                    )
                self.pos = gt + 1
                return self.pos
            search = close + 1

    # -- entity decoding ----------------------------------------------------

    def decode_entities(self, raw: str, start_pos: int) -> str:
        """Expand character and predefined entity references in ``raw``.

        ``start_pos`` is the offset of ``raw`` within the source text
        and is used only for error positions.  Literal runs between
        references are appended as bulk slices.  A reference whose
        ``;`` does not appear before the next ``&`` (or the end of
        ``raw`` — the token boundary) raises the typed
        :class:`UnterminatedEntityError` at the offending ``&``; the
        decoder never scans past either boundary hunting for a
        terminator.
        """
        amp = raw.find("&")
        if amp < 0:
            return raw
        out: list[str] = [raw[:amp]]
        while amp >= 0:
            semi = raw.find(";", amp + 1)
            next_amp = raw.find("&", amp + 1)
            if semi < 0 or (0 <= next_amp < semi):
                raise self.error(
                    "unterminated entity reference",
                    start_pos + amp,
                    UnterminatedEntityError,
                )
            out.append(self._expand_entity(raw[amp + 1 : semi], start_pos + amp))
            if next_amp < 0:
                out.append(raw[semi + 1 :])
                break
            out.append(raw[semi + 1 : next_amp])
            amp = next_amp
        return "".join(out)

    def _expand_entity(self, body: str, pos: int) -> str:
        self.entity_expansions += 1
        if (
            self._max_expansions is not None
            and self.entity_expansions > self._max_expansions
        ):
            line, column = self.line_column(pos)
            raise EntityExpansionError(
                f"more than {self._max_expansions} entity expansions "
                f"(line {line}, column {column})"
            )
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except (ValueError, OverflowError):
                raise self.error(f"bad character reference &{body};", pos)
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except (ValueError, OverflowError):
                raise self.error(f"bad character reference &{body};", pos)
        try:
            return PREDEFINED_ENTITIES[body]
        except KeyError:
            raise self.error(f"unknown entity &{body};", pos) from None


# -- document-level token stream ---------------------------------------------


def skip_prolog(scanner: Scanner) -> tuple[str, str]:
    """Consume the prolog (XML declaration, misc, DOCTYPE) up to the
    root element; returns ``(doctype_name, internal_subset)``.

    Shared by the tree parser, the event parser, and the token stream
    so all three agree on prolog structure and diagnostics.  Runs on
    the character-level primitives — the prolog is a few constructs per
    document, never a hot path.
    """
    doctype_name = ""
    internal_subset = ""
    scanner.skip_whitespace()
    if scanner.starts_with("<?xml"):
        scanner.advance(2)
        scanner.read_until("?>", what="XML declaration")
    while True:
        scanner.skip_whitespace()
        if scanner.starts_with("<!--"):
            scanner.advance(4)
            body = scanner.read_until("-->", what="comment")
            if "--" in body:
                raise scanner.error("'--' is not allowed inside a comment")
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", what="processing instruction")
        elif scanner.starts_with("<!DOCTYPE"):
            doctype_name, internal_subset = _read_doctype(scanner)
        else:
            return doctype_name, internal_subset


def _read_doctype(scanner: Scanner) -> tuple[str, str]:
    scanner.expect("<!DOCTYPE")
    scanner.skip_whitespace()
    name = scanner.read_name()
    scanner.skip_whitespace()
    # External identifier (ignored beyond syntax).
    if scanner.match("SYSTEM"):
        scanner.skip_whitespace()
        scanner.read_quoted()
        scanner.skip_whitespace()
    elif scanner.match("PUBLIC"):
        scanner.skip_whitespace()
        scanner.read_quoted()
        scanner.skip_whitespace()
        scanner.read_quoted()
        scanner.skip_whitespace()
    subset = ""
    if scanner.match("["):
        subset = _read_internal_subset(scanner)
        scanner.skip_whitespace()
    scanner.expect(">")
    return name, subset


def _read_internal_subset(scanner: Scanner) -> str:
    """Capture the internal subset verbatim up to the matching ``]``.

    Quoted literals and comments may contain ``]``, so we scan rather
    than string-find.
    """
    start = scanner.pos
    while True:
        ch = scanner.peek()
        if ch == "":
            raise scanner.error("unterminated DOCTYPE internal subset")
        if ch == "]":
            subset = scanner.text[start : scanner.pos]
            scanner.advance()
            return subset
        if ch in ("'", '"'):
            scanner.read_quoted()
        elif scanner.starts_with("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", what="comment")
        else:
            scanner.advance()


def fail_at_markup(scanner: Scanner, open_label: str, open_pos: int) -> None:
    """Diagnose a master-regex mismatch inside element content.

    The bulk arms decline to match malformed markup; this routine
    re-scans the cursor position with the character-level primitives,
    reproducing exactly the diagnostics of the pre-regex
    implementation.  It always raises.
    """
    if scanner.at_end():
        raise scanner.error(f"unterminated element <{open_label}>", open_pos)
    if scanner.starts_with("</"):
        scanner.advance(2)
        close_name = scanner.read_name()
        if close_name != open_label:
            raise scanner.error(
                f"mismatched close tag </{close_name}> for <{open_label}>"
            )
        scanner.skip_whitespace()
        scanner.expect(">")
    elif scanner.starts_with("<!--"):
        scanner.advance(4)
        scanner.read_until("-->", what="comment")
    elif scanner.starts_with("<![CDATA["):
        scanner.advance(len("<![CDATA["))
        scanner.read_until("]]>", what="CDATA section")
    elif scanner.starts_with("<?"):
        scanner.advance(2)
        scanner.read_until("?>", what="processing instruction")
    else:
        # A malformed start tag: replay the character-level attribute
        # scan for its exact diagnostic.
        scanner.advance(1)
        element_name = scanner.read_name()
        scan_attributes_slow(scanner, element_name)
        if not scanner.match("/>"):
            scanner.expect(">")
    # Every construct the primitives accept, the master regex accepts;
    # reaching here would mean the two lexers disagree.
    raise AssertionError(
        "master regex rejected markup the character-level scanner accepts "
        f"at offset {scanner.pos}"
    )


def scan_attributes_slow(
    scanner: Scanner, element_name: str
) -> dict[str, str]:
    """Character-level attribute scan (the pre-regex implementation),
    kept for exact diagnostics on tags the bulk regex declines."""
    attributes: dict[str, str] = {}
    while True:
        had_space = scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or ch == "":
            return attributes
        if not had_space:
            raise scanner.error(
                f"expected whitespace before attribute in <{element_name}>"
            )
        attr_pos = scanner.pos
        attr_name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        value_pos = scanner.pos + 1
        raw_value = scanner.read_quoted()
        if attr_name in attributes:
            raise scanner.error(
                f"duplicate attribute {attr_name!r} in <{element_name}>",
                attr_pos,
            )
        attributes[attr_name] = scanner.decode_entities(raw_value, value_pos)


def iter_tokens(
    text: str,
    *,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
) -> Iterator[tuple]:
    """The raw lexical token stream of a whole document.

    Yields, in document order:

    * ``(TOK_START, name, attrs_tuple, self_closing, pos)`` — attrs as
      an ordered tuple of (name, decoded value) pairs;
    * ``(TOK_END, name, pos)``;
    * ``(TOK_TEXT, decoded_text, pos)`` / ``(TOK_CDATA, body, pos)``;
    * ``(TOK_COMMENT, body, pos)`` / ``(TOK_PI, body, pos)``.

    Prolog constructs and trailing misc are consumed but not emitted
    (they never reach the document model); whitespace policy is the
    consumer's business, so whitespace-only text runs inside the root
    *are* emitted.  This is the lexer-equivalence surface: the
    character-level reference implementation
    (:func:`repro.xmltree.reference.reference_tokens`) must yield an
    identical stream, including error positions on malformed input.
    """
    scanner = Scanner(text, limits=limits, deadline=deadline)
    skip_prolog(scanner)
    if not scanner.starts_with("<"):
        raise scanner.error("expected the root element")
    depth = 0
    open_labels = [""]
    open_positions = [0]
    # The master sweep runs in generator locals: one C-level
    # ``finditer`` drives the whole token stream, with gap detection (a
    # hit that does not start at the cursor means the master declined
    # there — malformed markup, re-diagnosed by ``fail_at_markup``)
    # standing in for the per-token anchored match.  Every arm below
    # leaves ``scanner.pos == m.end()``, so the sweep never desyncs and
    # no per-token scanner-state bookkeeping is needed.
    kind_of = _KIND_BY_LASTINDEX
    deadline_ = scanner.deadline
    pos = scanner.pos
    sweep = MASTER_RE.finditer(text, pos)
    while True:
        m = next(sweep, None)
        if m is None or m.start() != pos:
            fail_at_markup(scanner, open_labels[-1], open_positions[-1])
        tok_pos, pos = pos, m.end()
        kind = kind_of[m.lastindex]
        if kind == TOK_TEXT:
            raw = m.group("text")
            scanner.pos = pos
            bad = raw.find("]]>")
            if bad >= 0:
                raise scanner.error(
                    "']]>' is not allowed in character data", tok_pos + bad
                )
            yield TOK_TEXT, scanner.decode_entities(raw, tok_pos), tok_pos
        elif kind == TOK_START:
            if deadline_ is not None:
                deadline_.tick()
            name, attributes, self_closing = scanner.start_tag_parts(m)
            yield (
                TOK_START,
                name,
                tuple(attributes.items()) if attributes else (),
                self_closing,
                tok_pos,
            )
            if not self_closing:
                depth += 1
                open_labels.append(name)
                open_positions.append(tok_pos)
            elif depth == 0:
                break
        elif kind == TOK_END:
            name = m.group("ename")
            if name != open_labels[-1]:
                raise scanner.error(
                    f"mismatched close tag </{name}> for "
                    f"<{open_labels[-1]}>",
                    m.end("ename"),
                )
            scanner.pos = pos
            yield TOK_END, name, tok_pos
            depth -= 1
            open_labels.pop()
            open_positions.pop()
            if depth == 0:
                break
        elif kind == TOK_COMMENT:
            body = m.group("comment")
            scanner.pos = pos
            if "--" in body:
                raise scanner.error("'--' is not allowed inside a comment")
            yield TOK_COMMENT, body, tok_pos
        elif kind == TOK_CDATA:
            scanner.pos = pos
            yield TOK_CDATA, m.group("cdata"), tok_pos
        else:
            scanner.pos = pos
            yield TOK_PI, m.group("pi"), tok_pos
    # Trailing misc after the root element.
    while not scanner.at_end():
        scanner.skip_whitespace()
        if scanner.at_end():
            break
        if scanner.starts_with("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", what="comment")
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", what="processing instruction")
        else:
            raise scanner.error("content after the root element")
