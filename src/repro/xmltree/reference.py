"""Character-at-a-time reference lexer/parser — the executable spec.

This module preserves the pre-regex implementation of the scanner and
the recursive-descent parser as an *oracle*: the bulk-regex lexer in
:mod:`repro.xmltree.lexer` and the parser built on it must produce
token-for-token (and node-for-node) identical output, including error
messages and positions on malformed input.
``tests/xmltree/test_token_equivalence.py`` checks that across the
generated workloads and the adversarial corpus; ``bench_parse.py`` uses
this module as the speedup baseline.

Two deliberate deviations from the historical code, both part of the
specification rather than drift:

* Entity decoding follows the hardened rule — a reference whose ``;``
  does not appear before the next ``&`` or the token boundary raises
  the typed :class:`~repro.errors.UnterminatedEntityError` at the
  offending ``&`` (the old code scanned past intervening ``&`` looking
  for any later ``;``).
* ``line_column`` keeps the old ``count`` + ``rfind`` computation —
  that is the point: it is the independent implementation the indexed
  version is tested against.

Nothing in the production code path imports this module.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import (
    EntityExpansionError,
    UnterminatedEntityError,
    XMLSyntaxError,
)
from repro.guards import (
    Deadline,
    Limits,
    check_depth,
    check_document_size,
    resolve_limits,
)
from repro.xmltree.dom import Document, Element, Text
from repro.xmltree.lexer import (
    PREDEFINED_ENTITIES,
    TOK_CDATA,
    TOK_COMMENT,
    TOK_END,
    TOK_PI,
    TOK_START,
    TOK_TEXT,
)

_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789-.")

_WHITESPACE = set(" \t\r\n")


class ReferenceScanner:
    """The pre-regex character-level scanner, kept verbatim (modulo the
    hardened entity rule documented in the module docstring)."""

    def __init__(
        self,
        text: str,
        *,
        limits: Optional[Limits] = None,
        deadline: Optional[Deadline] = None,
    ):
        self.text = text
        self.pos = 0
        self.limits = resolve_limits(limits)
        self.deadline = deadline
        self.entity_expansions = 0
        self._max_expansions = self.limits.max_entity_expansions

    # -- position reporting -------------------------------------------------

    def line_column(self, pos: int | None = None) -> tuple[int, int]:
        """O(pos) per request — the historical implementation the
        newline-indexed version must agree with."""
        if pos is None:
            pos = self.pos
        pos = min(pos, len(self.text))
        line = self.text.count("\n", 0, pos) + 1
        last_newline = self.text.rfind("\n", 0, pos)
        return line, pos - last_newline

    def error(self, message: str, pos: int | None = None,
              kind: type = XMLSyntaxError) -> XMLSyntaxError:
        line, column = self.line_column(pos)
        return kind(message, line, column)

    # -- basic cursor operations --------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        if index < len(self.text):
            return self.text[index]
        return ""

    def starts_with(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def expect(self, literal: str) -> None:
        if not self.starts_with(literal):
            found = self.text[self.pos : self.pos + len(literal)] or "<EOF>"
            raise self.error(f"expected {literal!r}, found {found!r}")
        self.pos += len(literal)

    def match(self, literal: str) -> bool:
        if self.starts_with(literal):
            self.pos += len(literal)
            return True
        return False

    # -- token-level helpers ------------------------------------------------

    def skip_whitespace(self) -> bool:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _WHITESPACE:
            self.pos += 1
        return self.pos > start

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or self.text[self.pos] not in _NAME_START:
            raise self.error("expected an XML name")
        self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]

    def read_until(self, delimiter: str, *, what: str) -> str:
        end = self.text.find(delimiter, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}: missing {delimiter!r}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(delimiter)
        return chunk

    def read_quoted(self) -> str:
        quote = self.peek()
        if quote not in ("'", '"'):
            raise self.error("expected a quoted literal")
        self.advance()
        return self.read_until(quote, what="quoted literal")

    # -- entity decoding ----------------------------------------------------

    def decode_entities(self, raw: str, start_pos: int) -> str:
        """Character-loop entity decoder with the hardened unterminated
        rule (see module docstring)."""
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            semi = raw.find(";", i + 1)
            next_amp = raw.find("&", i + 1)
            if semi < 0 or (0 <= next_amp < semi):
                raise self.error(
                    "unterminated entity reference",
                    start_pos + i,
                    UnterminatedEntityError,
                )
            body = raw[i + 1 : semi]
            out.append(self._expand_entity(body, start_pos + i))
            i = semi + 1
        return "".join(out)

    def _expand_entity(self, body: str, pos: int) -> str:
        self.entity_expansions += 1
        if (
            self._max_expansions is not None
            and self.entity_expansions > self._max_expansions
        ):
            line, column = self.line_column(pos)
            raise EntityExpansionError(
                f"more than {self._max_expansions} entity expansions "
                f"(line {line}, column {column})"
            )
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except (ValueError, OverflowError):
                raise self.error(f"bad character reference &{body};", pos)
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except (ValueError, OverflowError):
                raise self.error(f"bad character reference &{body};", pos)
        try:
            return PREDEFINED_ENTITIES[body]
        except KeyError:
            raise self.error(f"unknown entity &{body};", pos) from None


# -- reference token stream ---------------------------------------------------


def _skip_prolog(scanner: ReferenceScanner) -> tuple[str, str]:
    doctype_name = ""
    internal_subset = ""
    scanner.skip_whitespace()
    if scanner.starts_with("<?xml"):
        scanner.advance(2)
        scanner.read_until("?>", what="XML declaration")
    while True:
        scanner.skip_whitespace()
        if scanner.starts_with("<!--"):
            _skip_comment(scanner)
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", what="processing instruction")
        elif scanner.starts_with("<!DOCTYPE"):
            doctype_name, internal_subset = _read_doctype(scanner)
        else:
            return doctype_name, internal_subset


def _skip_comment(scanner: ReferenceScanner) -> str:
    scanner.expect("<!--")
    body = scanner.read_until("-->", what="comment")
    if "--" in body:
        raise scanner.error("'--' is not allowed inside a comment")
    return body


def _read_doctype(scanner: ReferenceScanner) -> tuple[str, str]:
    scanner.expect("<!DOCTYPE")
    scanner.skip_whitespace()
    name = scanner.read_name()
    scanner.skip_whitespace()
    if scanner.match("SYSTEM"):
        scanner.skip_whitespace()
        scanner.read_quoted()
        scanner.skip_whitespace()
    elif scanner.match("PUBLIC"):
        scanner.skip_whitespace()
        scanner.read_quoted()
        scanner.skip_whitespace()
        scanner.read_quoted()
        scanner.skip_whitespace()
    subset = ""
    if scanner.match("["):
        subset = _read_internal_subset(scanner)
        scanner.skip_whitespace()
    scanner.expect(">")
    return name, subset


def _read_internal_subset(scanner: ReferenceScanner) -> str:
    start = scanner.pos
    while True:
        ch = scanner.peek()
        if ch == "":
            raise scanner.error("unterminated DOCTYPE internal subset")
        if ch == "]":
            subset = scanner.text[start : scanner.pos]
            scanner.advance()
            return subset
        if ch in ("'", '"'):
            scanner.read_quoted()
        elif scanner.starts_with("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", what="comment")
        else:
            scanner.advance()


def _read_attributes(
    scanner: ReferenceScanner, element_name: str
) -> list[tuple[str, str]]:
    attributes: list[tuple[str, str]] = []
    seen: set[str] = set()
    while True:
        had_space = scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or ch == "":
            return attributes
        if not had_space:
            raise scanner.error(
                f"expected whitespace before attribute in <{element_name}>"
            )
        attr_pos = scanner.pos
        attr_name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        value_pos = scanner.pos + 1
        raw_value = scanner.read_quoted()
        if attr_name in seen:
            raise scanner.error(
                f"duplicate attribute {attr_name!r} in <{element_name}>",
                attr_pos,
            )
        seen.add(attr_name)
        attributes.append(
            (attr_name, scanner.decode_entities(raw_value, value_pos))
        )


def reference_tokens(
    text: str,
    *,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
) -> Iterator[tuple]:
    """Character-at-a-time token stream; the specification that
    :func:`repro.xmltree.lexer.iter_tokens` must reproduce exactly."""
    scanner = ReferenceScanner(text, limits=limits, deadline=deadline)
    _skip_prolog(scanner)
    if not scanner.starts_with("<"):
        raise scanner.error("expected the root element")
    depth = 0
    open_labels = [""]
    open_positions = [0]
    while True:
        pos = scanner.pos
        if scanner.at_end():
            raise scanner.error(
                f"unterminated element <{open_labels[-1]}>", open_positions[-1]
            )
        if scanner.starts_with("</"):
            scanner.advance(2)
            close_name = scanner.read_name()
            if close_name != open_labels[-1]:
                raise scanner.error(
                    f"mismatched close tag </{close_name}> for "
                    f"<{open_labels[-1]}>"
                )
            scanner.skip_whitespace()
            scanner.expect(">")
            yield TOK_END, close_name, pos
            depth -= 1
            open_labels.pop()
            open_positions.pop()
            if depth == 0:
                break
        elif scanner.starts_with("<!--"):
            body = _skip_comment(scanner)
            yield TOK_COMMENT, body, pos
        elif scanner.starts_with("<![CDATA["):
            scanner.advance(len("<![CDATA["))
            yield (
                TOK_CDATA,
                scanner.read_until("]]>", what="CDATA section"),
                pos,
            )
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            yield (
                TOK_PI,
                scanner.read_until("?>", what="processing instruction"),
                pos,
            )
        elif scanner.starts_with("<"):
            if scanner.deadline is not None:
                scanner.deadline.tick()
            scanner.advance(1)
            name = scanner.read_name()
            attributes = _read_attributes(scanner, name)
            if scanner.match("/>"):
                self_closing = True
            else:
                scanner.expect(">")
                self_closing = False
            yield TOK_START, name, tuple(attributes), self_closing, pos
            if not self_closing:
                depth += 1
                open_labels.append(name)
                open_positions.append(pos)
            elif depth == 0:
                break
        else:
            chunk_start = scanner.pos
            while not scanner.at_end() and scanner.peek() != "<":
                scanner.advance()
            raw = scanner.text[chunk_start : scanner.pos]
            if "]]>" in raw:
                raise scanner.error(
                    "']]>' is not allowed in character data",
                    chunk_start + raw.find("]]>"),
                )
            yield (
                TOK_TEXT,
                scanner.decode_entities(raw, chunk_start),
                chunk_start,
            )
    while not scanner.at_end():
        scanner.skip_whitespace()
        if scanner.at_end():
            break
        if scanner.starts_with("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", what="comment")
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", what="processing instruction")
        else:
            raise scanner.error("content after the root element")


# -- reference parser ---------------------------------------------------------


def reference_parse(
    text: str,
    *,
    keep_whitespace: bool = False,
    limits: Optional[Limits] = None,
    deadline: Optional[Deadline] = None,
) -> Document:
    """The historical recursive-descent parser, producing the same
    :class:`Document` (same tree, same sealed hashes) as the production
    :func:`repro.xmltree.parser.parse`."""
    limits = resolve_limits(limits)
    check_document_size(len(text), limits)
    if deadline is None:
        deadline = limits.deadline()
    return _ReferenceParser(
        text, keep_whitespace, limits, deadline
    ).parse_document()


class _ReferenceParser:
    def __init__(
        self,
        text: str,
        keep_whitespace: bool,
        limits: Optional[Limits] = None,
        deadline: Optional[Deadline] = None,
    ):
        self.limits = resolve_limits(limits)
        self.scanner = ReferenceScanner(
            text, limits=self.limits, deadline=deadline
        )
        self.keep_whitespace = keep_whitespace

    def parse_document(self) -> Document:
        scanner = self.scanner
        doctype_name, internal_subset = _skip_prolog(scanner)
        if not scanner.starts_with("<"):
            raise scanner.error("expected the root element")
        root = self._parse_element(1)
        while not scanner.at_end():
            scanner.skip_whitespace()
            if scanner.at_end():
                break
            if scanner.starts_with("<!--"):
                _skip_comment(scanner)
            elif scanner.starts_with("<?"):
                scanner.advance(2)
                scanner.read_until("?>", what="processing instruction")
            else:
                raise scanner.error("content after the root element")
        return Document(root, doctype_name, internal_subset)

    def _parse_element(self, depth: int) -> Element:
        scanner = self.scanner
        check_depth(depth, self.limits)
        if scanner.deadline is not None:
            scanner.deadline.tick()
        open_pos = scanner.pos
        scanner.expect("<")
        name = scanner.read_name()
        attributes = dict(_read_attributes(scanner, name))
        if scanner.match("/>"):
            node = Element(name, attributes)
            node.structural_hash()
            return node
        scanner.expect(">")
        node = Element(name, attributes)
        self._parse_content(node, open_pos, depth)
        node.structural_hash()
        return node

    def _parse_content(self, node: Element, open_pos: int, depth: int) -> None:
        scanner = self.scanner
        text_parts: list[str] = []

        def flush_text() -> None:
            if not text_parts:
                return
            value = "".join(text_parts)
            text_parts.clear()
            if value.strip() == "" and not self.keep_whitespace:
                return
            node.append(Text(value))

        while True:
            if scanner.at_end():
                raise scanner.error(
                    f"unterminated element <{node.label}>", open_pos
                )
            if scanner.starts_with("</"):
                flush_text()
                scanner.advance(2)
                close_name = scanner.read_name()
                if close_name != node.label:
                    raise scanner.error(
                        f"mismatched close tag </{close_name}> for "
                        f"<{node.label}>"
                    )
                scanner.skip_whitespace()
                scanner.expect(">")
                return
            if scanner.starts_with("<!--"):
                _skip_comment(scanner)
                continue
            if scanner.starts_with("<![CDATA["):
                scanner.advance(len("<![CDATA["))
                text_parts.append(
                    scanner.read_until("]]>", what="CDATA section")
                )
                continue
            if scanner.starts_with("<?"):
                scanner.advance(2)
                scanner.read_until("?>", what="processing instruction")
                continue
            if scanner.starts_with("<"):
                flush_text()
                node.append(self._parse_element(depth + 1))
                continue
            chunk_start = scanner.pos
            while not scanner.at_end() and scanner.peek() != "<":
                scanner.advance()
            raw = scanner.text[chunk_start : scanner.pos]
            if "]]>" in raw:
                raise scanner.error(
                    "']]>' is not allowed in character data",
                    chunk_start + raw.find("]]>"),
                )
            text_parts.append(scanner.decode_entities(raw, chunk_start))
