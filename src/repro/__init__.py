"""repro — Efficient Schema-Based Revalidation of XML (EDBT 2004).

A from-scratch reproduction of Raghavachari & Shmueli's schema cast
validation system: abstract XML Schemas, subsumption/disjointness
precomputation, immediate decision automata, and cast validators for
documents and strings, with and without modifications.

Quickstart::

    from repro import SchemaPair, CastValidator, parse_xsd, parse

    source = parse_xsd(open("v1.xsd").read())
    target = parse_xsd(open("v2.xsd").read())
    pair = SchemaPair(source, target)       # static preprocessing
    validator = CastValidator(pair)
    report = validator.validate(parse(open("doc.xml").read()))
    print(report.valid, report.stats.nodes_visited)
"""

from repro.automata import (
    DFA,
    Decision,
    ImmediateDecisionAutomaton,
    NFA,
    Strategy,
    StringCastValidator,
    StringUpdateRevalidator,
)
from repro.core import (
    CastValidator,
    StreamingCastValidator,
    StreamingValidator,
    validate_stream,
    CastWithModificationsValidator,
    DTDCastValidator,
    DocumentRepairer,
    UpdateSession,
    ValidationReport,
    ValidationStats,
    validate_document,
)
from repro.dewey import Dewey, DeweyTrie
from repro.errors import (
    BatchError,
    DeadlineExceededError,
    DocumentTooDeepError,
    DocumentTooLargeError,
    EntityExpansionError,
    ReproError,
    ResourceLimitError,
    SchemaError,
    StateBudgetExceededError,
    ValidationError,
    XMLSyntaxError,
)
from repro.guards import (
    DEFAULT_LIMITS,
    UNLIMITED,
    Deadline,
    Limits,
    limits_scope,
)
from repro.schema import (
    ComplexType,
    Schema,
    SchemaPair,
    SimpleType,
    builtin,
    complex_type,
    dtd_schema,
    parse_dtd,
    parse_xsd,
    parse_xsd_file,
    restrict,
)
from repro.xmltree import Document, Element, Text, element, parse, serialize

__version__ = "1.0.0"

__all__ = [
    "DFA",
    "Decision",
    "ImmediateDecisionAutomaton",
    "NFA",
    "Strategy",
    "StringCastValidator",
    "StringUpdateRevalidator",
    "CastValidator",
    "CastWithModificationsValidator",
    "DTDCastValidator",
    "DocumentRepairer",
    "UpdateSession",
    "ValidationReport",
    "ValidationStats",
    "validate_document",
    "StreamingCastValidator",
    "StreamingValidator",
    "validate_stream",
    "Dewey",
    "DeweyTrie",
    "BatchError",
    "DeadlineExceededError",
    "DocumentTooDeepError",
    "DocumentTooLargeError",
    "EntityExpansionError",
    "ReproError",
    "ResourceLimitError",
    "SchemaError",
    "StateBudgetExceededError",
    "ValidationError",
    "XMLSyntaxError",
    "DEFAULT_LIMITS",
    "UNLIMITED",
    "Deadline",
    "Limits",
    "limits_scope",
    "ComplexType",
    "Schema",
    "SchemaPair",
    "SimpleType",
    "builtin",
    "complex_type",
    "dtd_schema",
    "parse_dtd",
    "parse_xsd",
    "parse_xsd_file",
    "restrict",
    "Document",
    "Element",
    "Text",
    "element",
    "parse",
    "serialize",
    "__version__",
]
