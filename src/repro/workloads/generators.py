"""Random schema and document generators.

Property-based tests and the ablation benchmarks need three samplers:

* :func:`random_schema` — a random abstract XML Schema (pruned to
  productive types);
* :func:`sample_document` / :func:`sample_valid_tree` — a random
  document valid with respect to a given schema, built by sampling
  content-model DFAs under a height budget;
* :func:`random_word` — a random member of a DFA's language.

All randomness flows through an explicit ``random.Random`` instance so
every generated artifact is reproducible from a seed.
"""

from __future__ import annotations

import random
import string as _string
from fractions import Fraction
from typing import Optional

from repro.automata.dfa import DFA
from repro.errors import SchemaError
from repro.remodel.ast import (
    EPSILON,
    Regex,
    alt,
    opt,
    plus,
    repeat,
    seq,
    star,
    sym,
)
from repro.schema.model import ComplexType, Schema, TypeDef
from repro.schema.productive import prune_nonproductive
from repro.schema.simple import AtomicKind, SimpleType, builtin, restrict
from repro.xmltree.dom import Document, Element, Text


# -- random content models -------------------------------------------------------

def random_regex(
    rng: random.Random,
    symbols: list[str],
    *,
    depth: int = 3,
) -> Regex:
    """A random content-model expression over ``symbols``."""
    if not symbols:
        return EPSILON
    if depth <= 0 or rng.random() < 0.4:
        return sym(rng.choice(symbols))
    kind = rng.randrange(5)
    if kind == 0:
        parts = [
            random_regex(rng, symbols, depth=depth - 1)
            for _ in range(rng.randint(2, 3))
        ]
        return seq(*parts)
    if kind == 1:
        parts = [
            random_regex(rng, symbols, depth=depth - 1)
            for _ in range(rng.randint(2, 3))
        ]
        return alt(*parts)
    inner = random_regex(rng, symbols, depth=depth - 1)
    if kind == 2:
        return star(inner)
    if kind == 3:
        return opt(inner)
    low = rng.randint(0, 2)
    high = rng.choice([low, low + 1, low + 2, None])
    return repeat(inner, low, high)


# -- random simple types --------------------------------------------------------

def random_simple_type(rng: random.Random, name: str) -> SimpleType:
    """A random simple type from a palette of kinds and facets."""
    choice = rng.randrange(6)
    if choice == 0:
        return builtin("string")
    if choice == 1:
        return builtin("integer")
    if choice == 2:
        low = rng.randint(-50, 50)
        high = low + rng.randint(0, 100)
        return restrict(
            builtin("integer"),
            name,
            min_inclusive=Fraction(low),
            max_inclusive=Fraction(high),
        )
    if choice == 3:
        bound = rng.randint(2, 200)  # >=2 keeps the value space inhabited
        return restrict(builtin("positiveInteger"), name,
                        max_exclusive=Fraction(bound))
    if choice == 4:
        members = frozenset(
            rng.choice(["red", "green", "blue", "cyan", "teal"])
            for _ in range(rng.randint(1, 4))
        )
        return restrict(builtin("string"), name, enumeration=members)
    return builtin("decimal")


# -- random schemas -----------------------------------------------------------------

def random_schema(
    rng: random.Random,
    *,
    num_labels: int = 6,
    num_complex: int = 4,
    num_simple: int = 2,
    name: str = "",
) -> Schema:
    """A random productive abstract XML Schema.

    Labels are ``a0..a{n-1}``; complex types ``C0..``; simple types
    ``S0..``.  The result is pruned, so every type is productive; raises
    :class:`SchemaError` only in the (rare, retried by callers) case
    that pruning leaves no root.
    """
    labels = [f"a{i}" for i in range(num_labels)]
    simple_names = [f"S{i}" for i in range(num_simple)]
    complex_names = [f"C{i}" for i in range(num_complex)]
    all_names = simple_names + complex_names
    types: dict[str, TypeDef] = {}
    for simple_name in simple_names:
        types[simple_name] = random_simple_type(rng, simple_name)
    for complex_name in complex_names:
        used = rng.sample(labels, rng.randint(0, min(3, len(labels))))
        expression = random_regex(rng, used) if used else EPSILON
        child_types = {
            label: rng.choice(all_names)
            for label in expression.symbols()
        }
        attributes = {}
        if simple_names and rng.random() < 0.3:
            from repro.schema.model import AttributeDecl

            for attr_name in rng.sample(["id", "kind", "rank"],
                                        rng.randint(1, 2)):
                attributes[attr_name] = AttributeDecl(
                    attr_name,
                    rng.choice(simple_names),
                    required=rng.random() < 0.5,
                )
        types[complex_name] = ComplexType(
            complex_name, expression, child_types, attributes
        )
    roots = {
        rng.choice(labels): rng.choice(all_names)
        for _ in range(rng.randint(1, 2))
    }
    schema = Schema(types, roots, name=name or f"random-{rng.random():.6f}")
    return prune_nonproductive(schema)


# -- sampling words from DFAs -----------------------------------------------------

def _distances_to_final(dfa: DFA) -> dict[int, int]:
    """BFS distance from each state to the nearest accepting state."""
    from collections import deque

    distance = {q: 0 for q in dfa.finals}
    incoming = dfa.reverse_adjacency()
    queue = deque(dfa.finals)
    while queue:
        q = queue.popleft()
        for src in incoming[q]:
            if src not in distance:
                distance[src] = distance[q] + 1
                queue.append(src)
    return distance


def random_word(
    rng: random.Random,
    dfa: DFA,
    *,
    max_length: int = 24,
    allowed: Optional[frozenset[str]] = None,
) -> Optional[list[str]]:
    """A random word of ``L(dfa)`` (∩ ``allowed*``), or None if empty.

    The walk is biased: while under ``max_length`` it may take any step
    that keeps an accepting state reachable; beyond that it follows
    shortest paths to acceptance, so it always terminates.
    """
    if allowed is not None and allowed != dfa.alphabet:
        from repro.remodel.toregex import restrict_language

        dfa = restrict_language(dfa, allowed)
    distance = _distances_to_final(dfa)
    if dfa.start not in distance:
        return None
    word: list[str] = []
    state = dfa.start
    while True:
        if state in dfa.finals and (
            len(word) >= max_length or rng.random() < 0.35
        ):
            return word
        options = [
            (symbol, dst)
            for symbol, dst in dfa.transitions[state].items()
            if dst in distance
        ]
        if len(word) >= max_length:
            options = [
                (symbol, dst)
                for symbol, dst in options
                if distance[dst] < distance[state]
            ]
        if not options:
            # Only possible in a final state (distance 0 with no
            # shrinking move): accept here.
            assert state in dfa.finals
            return word
        symbol, state = rng.choice(options)
        word.append(symbol)


# -- sampling valid trees ------------------------------------------------------------

def random_text_for(rng: random.Random, declaration: SimpleType) -> str:
    """A random text value conforming to a simple type.

    Best-effort: when the declaration is unsatisfiable (facet
    perturbation can empty an integer window) the returned value is
    well-formed but nonconforming rather than raising.
    """
    if declaration.enumeration is not None:
        return rng.choice(sorted(declaration.enumeration))
    if declaration.kind is AtomicKind.STRING:
        low = declaration.min_length or 0
        high = declaration.max_length
        length = rng.randint(low, high if high is not None else low + 8)
        return "".join(rng.choice(_string.ascii_lowercase) for _ in range(length))
    if declaration.kind is AtomicKind.BOOLEAN:
        return rng.choice(["true", "false", "1", "0"])
    if declaration.kind is AtomicKind.DATE:
        return f"{rng.randint(1990, 2030)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
    interval = declaration.interval()
    assert interval is not None
    lower = interval.lower if interval.lower is not None else Fraction(-1000)
    upper = interval.upper if interval.upper is not None else lower + 1000
    import math

    lo = math.ceil(lower) + (1 if interval.lower_open and
                             Fraction(math.ceil(lower)) == lower else 0)
    hi = math.floor(upper) - (1 if interval.upper_open and
                              Fraction(math.floor(upper)) == upper else 0)
    if lo > hi:
        if declaration.kind is not AtomicKind.DECIMAL:
            # Unsatisfiable integral window — e.g. a perturbed bound
            # shifted below the minimum.  No conforming value exists;
            # return the nearest integer so sampling never crashes (the
            # document is simply invalid against this declaration).
            return str(lo)
        # Non-integral window (decimal-only type): take the midpoint.
        mid = (Fraction(lower) + Fraction(upper)) / 2
        return f"{float(mid):.4f}"
    value = rng.randint(lo, hi)
    if declaration.kind is AtomicKind.DECIMAL and rng.random() < 0.5:
        return f"{value}.{rng.randint(0, 99):02d}"
    return str(value)


class TreeSampler:
    """Samples valid trees for a schema under a height budget.

    ``feasible(τ, budget)`` — can τ produce a tree within ``budget``
    levels? — is memoized; simple types need two levels (element +
    text), complex types one plus their deepest required child.
    """

    def __init__(self, schema: Schema, *, max_depth: int = 8):
        self.schema = schema
        self.max_depth = max_depth
        self._feasible: dict[tuple[str, int], bool] = {}

    def feasible(self, type_name: str, budget: int) -> bool:
        key = (type_name, min(budget, self.max_depth))
        if key in self._feasible:
            return self._feasible[key]
        # Break cycles pessimistically; a revisit within the same
        # resolution means a recursive type needing more budget.
        self._feasible[key] = False
        declaration = self.schema.type(type_name)
        if not isinstance(declaration, ComplexType):
            result = budget >= 2
        elif budget < 1:
            result = False
        else:
            allowed = frozenset(
                label
                for label, child in declaration.child_types.items()
                if self.feasible(child, budget - 1)
            )
            from repro.schema.productive import _accepts_within

            result = _accepts_within(self.schema, type_name, allowed)
        self._feasible[key] = result
        return result

    def sample(
        self, rng: random.Random, type_name: str, label: str,
        budget: Optional[int] = None,
    ) -> Element:
        budget = self.max_depth if budget is None else budget
        if not self.feasible(type_name, budget):
            raise SchemaError(
                f"type {type_name!r} cannot produce a tree within "
                f"{budget} levels"
            )
        declaration = self.schema.type(type_name)
        node = Element(label)
        if not isinstance(declaration, ComplexType):
            node.append(Text(random_text_for(rng, declaration)))
            return node
        for attr in declaration.attributes.values():
            if attr.required or rng.random() < 0.5:
                value_type = self.schema.type(attr.type_name)
                assert isinstance(value_type, SimpleType)
                node.attributes[attr.name] = random_text_for(rng, value_type)
        allowed = frozenset(
            child_label
            for child_label, child in declaration.child_types.items()
            if self.feasible(child, budget - 1)
        )
        word = random_word(
            rng, self.schema.content_dfa(type_name), allowed=allowed
        )
        assert word is not None  # feasibility guaranteed it
        for child_label in word:
            child_type = declaration.child_types[child_label]
            node.append(
                self.sample(rng, child_type, child_label, budget - 1)
            )
        return node


def sample_valid_tree(
    rng: random.Random,
    schema: Schema,
    type_name: str,
    label: str,
    *,
    max_depth: int = 8,
) -> Element:
    """A random tree valid for ``type_name``, rooted at ``label``."""
    return TreeSampler(schema, max_depth=max_depth).sample(
        rng, type_name, label
    )


def sample_document(
    rng: random.Random, schema: Schema, *, max_depth: int = 8
) -> Optional[Document]:
    """A random document valid under ``schema`` (None if no root can
    produce a tree within the depth budget)."""
    sampler = TreeSampler(schema, max_depth=max_depth)
    candidates = [
        (label, type_name)
        for label, type_name in sorted(schema.roots.items())
        if sampler.feasible(type_name, max_depth)
    ]
    if not candidates:
        return None
    label, type_name = rng.choice(candidates)
    return Document(sampler.sample(rng, type_name, label))
