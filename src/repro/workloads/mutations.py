"""Random document edits and schema perturbations.

* :func:`random_edits` drives an :class:`UpdateSession` with a mix of
  the paper's update operations (rename / insert leaf / delete leaf /
  text change), for the with-modifications experiments;
* :func:`perturb_schema` produces a structurally "nearby" schema — the
  kind of drift the paper motivates with schema evolution — by loosening
  or tightening one occurrence constraint or facet at a time.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Optional

from repro.core.updates import UpdateSession
from repro.remodel.ast import Regex, Repeat, Symbol, repeat
from repro.schema.model import ComplexType, Schema, TypeDef
from repro.schema.simple import AtomicKind, SimpleType
from repro.xmltree.dom import Element, Text


# -- document edits ---------------------------------------------------------------

def random_edits(
    rng: random.Random,
    session: UpdateSession,
    count: int,
    *,
    labels: Optional[list[str]] = None,
    allow_deletes: bool = True,
) -> int:
    """Apply up to ``count`` random update operations; returns how many
    were actually applied (an op is skipped when no target exists)."""
    applied = 0
    palette = labels or sorted(
        {element.label for element in session.document.root.iter()}
    )
    for _ in range(count):
        op = rng.randrange(4 if allow_deletes else 3)
        if op == 0 and self_renameable(session):
            target = rng.choice(self_renameable(session))
            session.rename(target, rng.choice(palette))
            applied += 1
        elif op == 1:
            parents = [
                element
                for element in session.document.root.iter()
                if not session.is_deleted(element)
            ]
            parent = rng.choice(parents)
            position = rng.randint(0, len(parent.children))
            session.insert_element(parent, position, rng.choice(palette))
            applied += 1
        elif op == 2:
            texts = [
                node
                for element in session.document.root.iter()
                for node in element.children
                if isinstance(node, Text) and not session.is_deleted(node)
            ]
            if texts:
                session.replace_text(
                    rng.choice(texts), str(rng.randint(0, 500))
                )
                applied += 1
        else:
            leaves = deletable_leaves(session)
            if leaves:
                session.delete(rng.choice(leaves))
                applied += 1
    return applied


def self_renameable(session: UpdateSession) -> list[Element]:
    return [
        element
        for element in session.document.root.iter()
        if not session.is_deleted(element) and element.parent is not None
    ]


def deletable_leaves(session: UpdateSession) -> list:
    """Live nodes with no live children (and not the root)."""
    leaves = []
    for element in session.document.root.iter():
        if session.is_deleted(element):
            continue
        for child in element.children:
            if session.is_deleted(child):
                continue
            if isinstance(child, Text):
                leaves.append(child)
            elif not any(
                not session.is_deleted(grand) for grand in child.children
            ):
                leaves.append(child)
    return leaves


# -- schema perturbations --------------------------------------------------------

def perturb_schema(
    rng: random.Random, schema: Schema, *, name: str = ""
) -> Schema:
    """A nearby schema: one random occurrence bound or facet changed.

    Falls back to returning an identical copy when no perturbable site
    exists (degenerate schemas).
    """
    types = dict(schema.types)
    candidates = list(types)
    rng.shuffle(candidates)
    for type_name in candidates:
        declaration = types[type_name]
        replacement = _perturb_type(rng, declaration)
        if replacement is not None:
            types[type_name] = replacement
            break
    return Schema(
        types,
        dict(schema.roots),
        name=name or f"{schema.name}-perturbed",
        identity=schema.identity,
    )


def _perturb_type(rng: random.Random, declaration: TypeDef) -> Optional[TypeDef]:
    if isinstance(declaration, SimpleType):
        return _perturb_simple(rng, declaration)
    assert isinstance(declaration, ComplexType)
    perturbed = _perturb_regex(rng, declaration.content)
    if perturbed is None:
        return None
    child_types = {
        label: child
        for label, child in declaration.child_types.items()
        if label in perturbed.symbols()
    }
    try:
        return ComplexType(declaration.name, perturbed, child_types)
    except Exception:
        return None


def _perturb_simple(
    rng: random.Random, declaration: SimpleType
) -> Optional[SimpleType]:
    if declaration.kind not in (AtomicKind.INTEGER, AtomicKind.DECIMAL):
        return None
    interval = declaration.interval()
    if interval is None or interval.upper is None:
        return None
    shift = Fraction(rng.choice([-50, -10, 10, 50, 100]))
    fields = {
        "min_inclusive": declaration.min_inclusive,
        "max_inclusive": declaration.max_inclusive,
        "min_exclusive": declaration.min_exclusive,
        "max_exclusive": declaration.max_exclusive,
    }
    if declaration.max_exclusive is not None:
        fields["max_exclusive"] = declaration.max_exclusive + shift
    elif declaration.max_inclusive is not None:
        fields["max_inclusive"] = declaration.max_inclusive + shift
    return SimpleType(
        name=f"{declaration.name}~",
        kind=declaration.kind,
        min_length=declaration.min_length,
        max_length=declaration.max_length,
        enumeration=declaration.enumeration,
        **fields,
    )


def _perturb_regex(rng: random.Random, expression: Regex) -> Optional[Regex]:
    """Toggle one occurrence constraint somewhere in the expression."""
    sites: list[tuple[Regex, str]] = []

    def collect(node: Regex) -> None:
        if isinstance(node, Repeat):
            sites.append((node, "repeat"))
        elif isinstance(node, Symbol):
            sites.append((node, "symbol"))
        for child in getattr(node, "parts", ()) or ():
            collect(child)
        inner = getattr(node, "child", None)
        if inner is not None:
            collect(inner)

    collect(expression)
    if not sites:
        return None
    victim, kind = rng.choice(sites)

    def rewrite(node: Regex) -> Regex:
        if node is victim:
            if kind == "symbol":
                # Required ↔ optional.
                return repeat(node, 0, 1)
            assert isinstance(node, Repeat)
            if node.low == 0:
                high = node.high if node.high is None or node.high >= 1 else 1
                return repeat(node.child, 1, high)
            return repeat(node.child, 0, node.high)
        from repro.remodel.ast import Alt, Seq, Star

        if isinstance(node, Seq):
            return Seq(tuple(rewrite(part) for part in node.parts))
        if isinstance(node, Alt):
            return Alt(tuple(rewrite(part) for part in node.parts))
        if isinstance(node, Star):
            return Star(rewrite(node.child))
        if isinstance(node, Repeat):
            return Repeat(rewrite(node.child), node.low, node.high)
        return node

    return rewrite(expression)
