"""k-hop purchase-order schema drift: the evolution-chain workload.

Real schemas evolve in small steps — a facet tightens, an optional
element becomes required, a label is renamed — and a document validated
against revision 1 must be revalidated against revision n.  This module
generates such histories deterministically from the paper's Figure 2
purchase-order family, one drift step per hop:

* ``tighten`` — the ``quantity`` bound halves, or ``billTo`` becomes
  required (narrows the language: the interesting residual check).
* ``loosen`` — the ``quantity`` bound doubles, or ``billTo`` becomes
  optional (widens the language: the hop is vacuous under the premise,
  and a chain of these is statically safe).
* ``rename`` — the optional ``shipDate`` element gets a new label
  (``deliveryDate``, ``dispatchDate``, ...): incomparable with the
  previous revision, so neither subsumed nor vacuous.

Both the chain-equivalence fuzzer and :mod:`benchmarks.bench_chain`
draw their schemas and documents from here, so the property tests and
the performance gate exercise the same drift space.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.schema.model import Schema
from repro.schema.xsd import parse_xsd
from repro.xmltree.dom import Document, Element, element
from repro.xmltree.serializer import serialize

__all__ = [
    "DRIFT_KINDS",
    "DriftState",
    "conforming_document",
    "drift_chain",
    "po_variant",
    "po_variant_xsd",
    "violating_document",
]

#: Hop kinds :func:`drift_chain` understands, in the order a cyclic
#: default plan applies them.
DRIFT_KINDS = ("tighten", "loosen", "rename")

#: Successive labels a ``rename`` hop rotates the ship-date element
#: through; after the last it continues with ``shipDate4``, ...
_RENAME_LABELS = ("shipDate", "deliveryDate", "dispatchDate")


def po_variant_xsd(
    *,
    billto_optional: bool = True,
    qty_max: int = 100,
    shipdate_label: str = "shipDate",
) -> str:
    """XSD source for one revision of the Figure 2 family."""
    billto_min = ' minOccurs="0"' if billto_optional else ""
    return f"""
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType"/>
  <xsd:element name="comment" type="xsd:string"/>
  <xsd:complexType name="POType">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"{billto_min}/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
      <xsd:element name="country" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="Item" minOccurs="0"
                   maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Item">
    <xsd:sequence>
      <xsd:element name="productName" type="xsd:string"/>
      <xsd:element name="quantity">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="{qty_max}"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="USPrice" type="xsd:decimal"/>
      <xsd:element name="{shipdate_label}" type="xsd:date" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"""


def po_variant(
    *,
    billto_optional: bool = True,
    qty_max: int = 100,
    shipdate_label: str = "shipDate",
    name: str = "",
) -> Schema:
    """One parsed revision of the purchase-order schema family."""
    return parse_xsd(
        po_variant_xsd(
            billto_optional=billto_optional,
            qty_max=qty_max,
            shipdate_label=shipdate_label,
        ),
        name=name
        or (
            f"po-{'opt' if billto_optional else 'req'}"
            f"-qty{qty_max}-{shipdate_label}"
        ),
    )


class DriftState:
    """The evolving schema parameters along one history."""

    def __init__(
        self,
        *,
        billto_optional: bool = True,
        qty_max: int = 256,
        rename_step: int = 0,
    ):
        self.billto_optional = billto_optional
        self.qty_max = qty_max
        self.rename_step = rename_step

    @property
    def shipdate_label(self) -> str:
        if self.rename_step < len(_RENAME_LABELS):
            return _RENAME_LABELS[self.rename_step]
        return f"shipDate{self.rename_step + 1}"

    def schema(self, name: str = "") -> Schema:
        return po_variant(
            billto_optional=self.billto_optional,
            qty_max=self.qty_max,
            shipdate_label=self.shipdate_label,
            name=name,
        )

    def apply(self, kind: str) -> None:
        """Advance one drift step; ``tighten``/``loosen`` alternate
        between the quantity facet and the billTo occurrence so both
        simple-type and content-model drift occur."""
        if kind == "tighten":
            if self.billto_optional and self.qty_max <= 16:
                self.billto_optional = False
            else:
                self.qty_max = max(4, self.qty_max // 2)
        elif kind == "loosen":
            if not self.billto_optional:
                self.billto_optional = True
            else:
                self.qty_max *= 2
        elif kind == "rename":
            self.rename_step += 1
        else:
            raise ValueError(
                f"unknown drift kind {kind!r}; pick from {DRIFT_KINDS}"
            )


def drift_chain(
    hops: int,
    kinds: Optional[Sequence[str]] = None,
    *,
    qty_start: int = 256,
) -> tuple[list[Schema], list[str]]:
    """``hops`` revisions of drift: returns ``(schemas, kinds)`` with
    ``len(schemas) == hops + 1``.

    ``kinds`` picks the step at each hop (defaults to all-``tighten``,
    the monotone history whose residual collapses to one check).  The
    returned kinds list is the plan actually applied.
    """
    if hops < 1:
        raise ValueError("a drift chain needs at least one hop")
    plan = list(kinds) if kinds is not None else ["tighten"] * hops
    if len(plan) != hops:
        raise ValueError(
            f"{hops} hops but {len(plan)} kinds: {plan!r}"
        )
    state = DriftState(qty_max=qty_start)
    schemas = [state.schema(name="po-rev0")]
    for index, kind in enumerate(plan):
        state.apply(kind)
        schemas.append(state.schema(name=f"po-rev{index + 1}"))
    return schemas, plan


# -- documents ---------------------------------------------------------------


def _address(label: str) -> Element:
    return element(
        label,
        element("name", "Alice Smith"),
        element("street", "123 Maple Street"),
        element("city", "Mill Valley"),
        element("state", "CA"),
        element("zip", "90952"),
        element("country", "US"),
    )


def _item(
    index: int, quantity: int, shipdate_label: Optional[str]
) -> Element:
    children = [
        element("productName", f"Lawnmower model {index}"),
        element("quantity", str(quantity)),
        element("USPrice", f"{148 + (index % 50)}.95"),
    ]
    if shipdate_label is not None:
        children.append(
            element(shipdate_label, "2004-05-%02d" % (1 + index % 28))
        )
    return element("item", *children)


def _order(
    item_count: int,
    *,
    with_billto: bool,
    quantity_of: Callable[[int], int],
    shipdate_label: Optional[str],
) -> Document:
    children = [_address("shipTo")]
    if with_billto:
        children.append(_address("billTo"))
    children.append(
        element(
            "items",
            *(
                _item(index, quantity_of(index), shipdate_label)
                for index in range(item_count)
            ),
        )
    )
    return Document(element("purchaseOrder", *children))


def _min_qty(schemas: Sequence[Schema]) -> int:
    """The tightest quantity bound along the chain, recovered from the
    anonymous quantity type's ``maxExclusive`` facet."""
    bound = None
    for schema in schemas:
        declaration = schema.types.get("#anon:Item.quantity")
        value = getattr(declaration, "max_exclusive", None)
        if value is not None:
            value = int(value)
            bound = value if bound is None else min(bound, value)
    return bound if bound is not None else 100


def conforming_document(
    schemas: Sequence[Schema], item_count: int = 8
) -> str:
    """Serialized purchase order valid under *every* chain revision:
    quantities below the tightest bound, ``billTo`` present, the
    optional ship-date element omitted (its label may drift)."""
    bound = _min_qty(schemas)
    document = _order(
        item_count,
        with_billto=True,
        quantity_of=lambda index: 1 + index % max(1, bound - 1),
        shipdate_label=None,
    )
    return serialize(document)


def violating_document(
    schemas: Sequence[Schema],
    kinds: Sequence[str],
    hop: int,
    item_count: int = 8,
) -> str:
    """Serialized purchase order valid under revision 0 but built to
    trip the change hop ``hop`` (0-based) introduced.

    For a ``tighten`` hop the violation is a quantity inside the old
    bound but outside the new one (or a missing ``billTo``); for a
    ``rename`` hop the document carries the *pre-rename* ship-date
    label.  ``loosen`` hops reject nothing — the document violates the
    tightest bound anywhere in the chain instead, so the overall chain
    verdict is still invalid.
    """
    if not 0 <= hop < len(kinds):
        raise ValueError(f"hop {hop} outside {len(kinds)}-hop chain")
    kind = kinds[hop]
    before, after = schemas[hop], schemas[hop + 1]
    if kind == "rename":
        old_label = sorted(
            before.useful_symbols("Item") - after.useful_symbols("Item")
        )
        label = old_label[0] if old_label else "shipDate"
        document = _order(
            item_count,
            with_billto=True,
            quantity_of=lambda index: 1 + index % 3,
            shipdate_label=label,
        )
        return serialize(document)
    def billto_optional(schema: Schema) -> bool:
        return schema.content_dfa("POType").accepts(("shipTo", "items"))

    if kind == "tighten" and billto_optional(before) and not billto_optional(
        after
    ):
        # The hop required billTo; omitting it was legal before.
        document = _order(
            item_count,
            with_billto=False,
            quantity_of=lambda index: 1 + index % 3,
            shipdate_label=None,
        )
        return serialize(document)
    old_bound = _min_qty(schemas[: hop + 1])
    new_bound = _min_qty([after])
    if kind == "tighten" and new_bound < old_bound:
        violating = new_bound  # >= new bound, < every earlier bound
        document = _order(
            item_count,
            with_billto=True,
            quantity_of=lambda index: (
                violating if index == item_count // 2 else 1 + index % 3
            ),
            shipdate_label=None,
        )
        return serialize(document)
    # Loosen hops reject nothing; violate the chain's tightest bound.
    bound = _min_qty(schemas)
    document = _order(
        item_count,
        with_billto=True,
        quantity_of=lambda index: (
            bound if index == item_count // 2 else 1 + index % 3
        ),
        shipdate_label=None,
    )
    return serialize(document)
