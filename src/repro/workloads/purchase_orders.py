"""The paper's experimental workload: purchase-order schemas and documents.

Embeds the schemas of Figures 1 and 2 as real XSD source (parsed through
the :mod:`repro.schema.xsd` front-end, so the experiments exercise the
same path a user would) and generates the input documents of Section 6:
purchase orders with a configurable number of ``item`` elements.

Experiment 1 casts documents valid under the Figure 1a schema (billTo
*optional*) to the Figure 1b/2 schema (billTo *required*).

Experiment 2 casts documents valid under a variant of Figure 2 whose
``quantity`` has ``maxExclusive=200`` to the original Figure 2
(``maxExclusive=100``).

``PAPER_ITEM_COUNTS`` and the Table 2/3 constants record the paper's
reported numbers for the harness to print alongside measurements.
"""

from __future__ import annotations

from repro.schema.model import Schema
from repro.schema.xsd import parse_xsd
from repro.xmltree.dom import Document, Element, element
from repro.xmltree.serializer import serialize

#: The item counts used throughout Section 6.
PAPER_ITEM_COUNTS = (2, 50, 100, 200, 500, 1000)

#: Table 2 — file sizes (bytes) the paper reports per item count.
PAPER_TABLE2_FILE_SIZES = {
    2: 990,
    50: 11_358,
    100: 22_158,
    200: 43_758,
    500: 108_558,
    1000: 216_558,
}

#: Table 3 — nodes traversed in Experiment 2 (schema cast vs Xerces).
PAPER_TABLE3_NODES = {
    2: (35, 74),
    50: (611, 794),
    100: (1_211, 1_544),
    200: (2_411, 3_044),
    500: (6_011, 7_544),
    1000: (12_011, 15_044),
}


def _po_xsd(
    *,
    billto_optional: bool,
    quantity_max_exclusive: int,
) -> str:
    billto_min = ' minOccurs="0"' if billto_optional else ""
    return f"""
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType"/>
  <xsd:element name="comment" type="xsd:string"/>
  <xsd:complexType name="POType">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"{billto_min}/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
      <xsd:element name="country" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="Item" minOccurs="0"
                   maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Item">
    <xsd:sequence>
      <xsd:element name="productName" type="xsd:string"/>
      <xsd:element name="quantity">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="{quantity_max_exclusive}"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="USPrice" type="xsd:decimal"/>
      <xsd:element name="shipDate" type="xsd:date" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"""


def purchase_order_schema(
    *, billto_optional: bool, quantity_max_exclusive: int, name: str = ""
) -> Schema:
    """Any variant of the Figure 2 schema family."""
    return parse_xsd(
        _po_xsd(
            billto_optional=billto_optional,
            quantity_max_exclusive=quantity_max_exclusive,
        ),
        name=name
        or f"po-billto-{'opt' if billto_optional else 'req'}"
        f"-qty{quantity_max_exclusive}",
    )


def source_schema_experiment1() -> Schema:
    """Figure 1a: billTo optional (plus the Figure 2 surroundings)."""
    return parse_xsd(
        _po_xsd(billto_optional=True, quantity_max_exclusive=100),
        name="po-billto-optional",
    )


def target_schema_experiment1() -> Schema:
    """Figure 1b / Figure 2: billTo required, quantity < 100."""
    return parse_xsd(
        _po_xsd(billto_optional=False, quantity_max_exclusive=100),
        name="po-billto-required",
    )


def source_schema_experiment2() -> Schema:
    """Figure 2 with quantity maxExclusive raised to 200."""
    return parse_xsd(
        _po_xsd(billto_optional=False, quantity_max_exclusive=200),
        name="po-quantity-200",
    )


def target_schema_experiment2() -> Schema:
    """Figure 2 verbatim: quantity maxExclusive 100."""
    return parse_xsd(
        _po_xsd(billto_optional=False, quantity_max_exclusive=100),
        name="po-quantity-100",
    )


#: Figure 2 with *every* leaf simple type tightened by a facet the
#: source lacks, so no reachable ``(τ, τ')`` pair is subsumed: strings
#: gain ``maxLength``, decimals gain ``maxInclusive``, ``shipDate``
#: becomes a bounded string, and ``quantity`` drops to ``< 100``.  The
#: content models are unchanged, so nothing is disjoint either — a cast
#: must check every value.  This is the worst case for skip-based
#: optimizations (benchmarks use it to bound their overhead); the
#: standard :func:`make_purchase_order` documents remain valid under it.
_PO_XSD_ZERO_SUBSUMPTION = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType"/>
  <xsd:element name="comment" type="BoundedString"/>
  <xsd:simpleType name="BoundedString">
    <xsd:restriction base="xsd:string">
      <xsd:maxLength value="100"/>
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:simpleType name="BoundedDecimal">
    <xsd:restriction base="xsd:decimal">
      <xsd:maxInclusive value="1000000"/>
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:complexType name="POType">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="BoundedString"/>
      <xsd:element name="street" type="BoundedString"/>
      <xsd:element name="city" type="BoundedString"/>
      <xsd:element name="state" type="BoundedString"/>
      <xsd:element name="zip" type="BoundedDecimal"/>
      <xsd:element name="country" type="BoundedString"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="Item" minOccurs="0"
                   maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Item">
    <xsd:sequence>
      <xsd:element name="productName" type="BoundedString"/>
      <xsd:element name="quantity">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="100"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="USPrice" type="BoundedDecimal"/>
      <xsd:element name="shipDate" type="BoundedString" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"""


def source_schema_zero_subsumption() -> Schema:
    """The Experiment-2 source (quantity < 200, unfaceted leaves)."""
    return parse_xsd(
        _po_xsd(billto_optional=False, quantity_max_exclusive=200),
        name="po-zero-sub-source",
    )


def target_schema_zero_subsumption() -> Schema:
    """Figure 2 with every leaf type strictly tightened — a pair
    against :func:`source_schema_zero_subsumption` has an empty
    ``R_sub`` over the reachable types, so a cast can skip nothing."""
    return parse_xsd(_PO_XSD_ZERO_SUBSUMPTION, name="po-zero-sub-target")


def _address(label: str, suffix: str) -> Element:
    return element(
        label,
        element("name", f"Alice Smith {suffix}"),
        element("street", f"{suffix} Maple Street"),
        element("city", "Mill Valley"),
        element("state", "CA"),
        element("zip", "90952"),
        element("country", "US"),
    )


def make_item(index: int, *, quantity: int, with_ship_date: bool = True) -> Element:
    children = [
        element("productName", f"Lawnmower model {index}"),
        element("quantity", str(quantity)),
        element("USPrice", f"{148 + (index % 50)}.95"),
    ]
    if with_ship_date:
        children.append(element("shipDate", "2004-05-%02d" % (1 + index % 28)))
    return element("item", *children)


def make_purchase_order(
    item_count: int,
    *,
    with_billto: bool = True,
    quantity_of: "callable[[int], int]" = lambda index: 1 + index % 99,
) -> Document:
    """A purchase order with ``item_count`` items.

    Default quantities stay below 100, so the document is valid under
    every schema variant above; pass a different ``quantity_of`` to
    construct Experiment 2 edge cases (e.g. values in [100, 200)).
    """
    children: list[Element] = [_address("shipTo", "S")]
    if with_billto:
        children.append(_address("billTo", "B"))
    items = element(
        "items",
        *(
            make_item(index, quantity=quantity_of(index))
            for index in range(item_count)
        ),
    )
    children.append(items)
    return Document(element("purchaseOrder", *children))


def document_size_bytes(document: Document) -> int:
    """Serialized size of a document (pretty-printed, as the paper's
    input files were) in bytes."""
    return len(
        serialize(document, indent="  ", xml_declaration=True).encode("utf-8")
    )
