"""Workload generation: the paper's purchase-order experiments, random
schemas/documents for property tests, and edit/perturbation drivers."""

from repro.workloads.adversarial import (
    adversarial_content_models,
    adversarial_documents,
    deep_document,
    entity_bomb,
    exponential_dfa_source,
    oversized_document,
    repeat_bomb_source,
    wide_document,
)
from repro.workloads.generators import (
    TreeSampler,
    random_regex,
    random_schema,
    random_simple_type,
    random_text_for,
    random_word,
    sample_document,
    sample_valid_tree,
)
from repro.workloads.mutations import (
    deletable_leaves,
    perturb_schema,
    random_edits,
)
from repro.workloads.purchase_orders import (
    PAPER_ITEM_COUNTS,
    PAPER_TABLE2_FILE_SIZES,
    PAPER_TABLE3_NODES,
    document_size_bytes,
    make_item,
    make_purchase_order,
    purchase_order_schema,
    source_schema_experiment1,
    source_schema_experiment2,
    target_schema_experiment1,
    target_schema_experiment2,
)

__all__ = [
    "adversarial_content_models",
    "adversarial_documents",
    "deep_document",
    "entity_bomb",
    "exponential_dfa_source",
    "oversized_document",
    "repeat_bomb_source",
    "wide_document",
    "TreeSampler",
    "random_regex",
    "random_schema",
    "random_simple_type",
    "random_text_for",
    "random_word",
    "sample_document",
    "sample_valid_tree",
    "deletable_leaves",
    "perturb_schema",
    "random_edits",
    "PAPER_ITEM_COUNTS",
    "PAPER_TABLE2_FILE_SIZES",
    "PAPER_TABLE3_NODES",
    "document_size_bytes",
    "make_item",
    "make_purchase_order",
    "purchase_order_schema",
    "source_schema_experiment1",
    "source_schema_experiment2",
    "target_schema_experiment1",
    "target_schema_experiment2",
]
