"""Adversarial inputs: documents and schemas built to break validators.

Every generator here produces an input that a *correct* resource-guarded
pipeline must refuse with a typed :class:`~repro.errors.ReproError`
(usually a :class:`~repro.errors.ResourceLimitError` subclass) — never
an unhandled exception, a hang, or memory exhaustion.  The
fault-injection harness (``tests/faultinject.py``) runs the whole
corpus through every entry point and asserts exactly that.

The shapes:

* **deep nesting** — a linear chain of elements past any sane depth
  (recursion/stack attack on tree builders and recursive validators);
* **entity amplification** — long runs of character/entity references
  (the expansion-count analogue of billion-laughs for a parser whose
  entity set is fixed);
* **oversized documents** — byte-size blowups from a tiny template;
* **state blowup schemas** — content models whose NFA determinization
  or pair-product construction explodes exponentially, and bounded
  repeats whose lowering nests pathologically;
* **malformed tails** — truncations and garbage bytes appended to a
  valid prefix (parser robustness, not a resource attack).

Generators return strings (document text) or expression sources so the
corpus can be written to disk by tests and CLI runs alike; everything is
deterministic — no randomness — because an adversarial input that only
sometimes reproduces is a flaky test.
"""

from __future__ import annotations

from typing import Iterator

# -- adversarial documents ---------------------------------------------------


def deep_document(depth: int, label: str = "a") -> str:
    """A linear chain ``<a><a>…</a></a>`` of ``depth`` nested elements."""
    return f"<{label}>" * depth + f"</{label}>" * depth


def entity_bomb(expansions: int) -> str:
    """A single element whose text forces ``expansions`` entity/charref
    expansions during lexing."""
    return "<a>" + "&amp;" * expansions + "</a>"


def wide_document(children: int, label: str = "a", child: str = "b") -> str:
    """One root with ``children`` flat children — large but legal; used
    to size byte/deadline budgets without deep recursion."""
    return (
        f"<{label}>" + f"<{child}>x</{child}>" * children + f"</{label}>"
    )


def oversized_document(target_bytes: int) -> str:
    """Well-formed text of at least ``target_bytes`` bytes."""
    filler = "<a>" + "x" * max(target_bytes - 7, 0) + "</a>"
    return filler


def truncated_document(depth: int = 4) -> str:
    """A document cut mid-tag (well-formedness failure, typed error)."""
    whole = deep_document(depth)
    return whole[: len(whole) // 2]


def garbage_tail_document() -> str:
    """Valid document followed by trailing garbage bytes."""
    return "<a><b>x</b></a>\x01\x02garbage<<<"


def adversarial_documents(
    *,
    depth: int = 100_000,
    expansions: int = 1_000_000,
    size_bytes: int = 1_000_000,
) -> Iterator[tuple[str, str]]:
    """The document corpus as ``(name, text)`` pairs.

    Defaults are far past the default :class:`~repro.guards.Limits`
    so each input trips its guard; tests shrink them with explicit
    tighter limits to keep runs fast.
    """
    yield "deep-nesting", deep_document(depth)
    yield "entity-bomb", entity_bomb(expansions)
    yield "oversized", oversized_document(size_bytes)
    yield "truncated", truncated_document()
    yield "garbage-tail", garbage_tail_document()


# -- adversarial schemas (content-model sources) ------------------------------


def exponential_dfa_source(n: int, label: str = "a", other: str = "b") -> str:
    """The classic ``(a|b)*,a,(a|b)^n`` model: its minimal DFA needs
    ``2^n`` states, so subset construction must hit the state budget."""
    tail = ",".join(f"({label}|{other})" for _ in range(n))
    return f"({label}|{other})*,{label},{tail}"


def repeat_bomb_source(bound: int, label: str = "a") -> str:
    """A bounded repeat whose lowering nests ``bound`` optionals —
    recursion depth, not just position count, is the attack."""
    return f"({label}{{0,{bound}}})"


def position_bomb_source(copies: int, width: int, label: str = "a") -> str:
    """Nested bounded repeats multiplying into ``copies**width``
    Glushkov positions."""
    inner = label
    for _ in range(width):
        inner = f"({inner}){{0,{copies}}}"
    return inner


def adversarial_content_models(
    *, exp_n: int = 24, repeat_bound: int = 50_000
) -> Iterator[tuple[str, str]]:
    """Content-model sources as ``(name, source)`` pairs; compiling any
    of them under a finite state budget must raise
    :class:`~repro.errors.StateBudgetExceededError`."""
    yield "exponential-dfa", exponential_dfa_source(exp_n)
    yield "repeat-bomb", repeat_bomb_source(repeat_bound)
    yield "position-bomb", position_bomb_source(100, 3)
