"""Resource guards: limits, deadlines, and the ambient guard context.

The paper's cost model assumes well-formed inputs and tractable
schemas.  A production revalidation service cannot: crafted documents
can nest arbitrarily deep (``RecursionError`` in the recursive-descent
parser), balloon entity expansions, or simply be enormous; crafted
content models can blow up subset construction and the pair products
exponentially.  This module centralizes the defence:

* :class:`Limits` — one immutable bundle of every knob (document bytes,
  tree depth, entity expansions, automaton states, per-document
  wall-clock deadline).  ``None`` disables an individual guard;
  :data:`DEFAULT_LIMITS` is permissive enough for every legitimate
  workload in the repository while stopping each known blowup.
* :class:`Deadline` — a cheap counter-amortized wall-clock token: hot
  loops call :meth:`Deadline.tick` once per element/event, and only
  every :data:`Deadline.stride`-th tick touches ``time.monotonic``.
* the *ambient* limits — a process-wide default consulted by code too
  deep to thread a parameter through (automaton construction inside
  schema compilation).  Per-document entry points (parsers,
  validators, the batch driver) take an explicit ``limits`` argument
  and fall back to the ambient value.

Every guard violation raises a :class:`repro.errors.ResourceLimitError`
subclass, keeping the failure inside the ``ReproError`` taxonomy that
callers (and the batch driver's per-document error capture) already
handle.  See ``docs/ROBUSTNESS.md`` for the full contract.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.errors import (
    DeadlineExceededError,
    DocumentTooDeepError,
    DocumentTooLargeError,
)

__all__ = [
    "Limits",
    "Deadline",
    "DEFAULT_LIMITS",
    "UNLIMITED",
    "get_limits",
    "set_limits",
    "limits_scope",
    "resolve_limits",
    "check_document_size",
    "check_depth",
    "state_budget",
]


@dataclass(frozen=True)
class Limits:
    """Immutable resource-limit configuration.

    Each field bounds one failure mode; ``None`` disables that guard.
    The defaults are deliberately generous — roughly 100× any document
    or schema in the test corpus — so they never fire on legitimate
    input, yet every known pathological input hits one of them long
    before the process hangs or dies.
    """

    #: Maximum document size (bytes on disk, characters for in-memory
    #: strings).  Checked before parsing starts.
    max_document_bytes: Optional[int] = 64 * 1024 * 1024
    #: Maximum element nesting depth.  Must stay comfortably below the
    #: level at which the recursive-descent parser would exhaust the
    #: Python stack (~2 frames per level against the default
    #: recursion limit of 1000).
    max_tree_depth: Optional[int] = 200
    #: Maximum entity/character-reference expansions per document.
    max_entity_expansions: Optional[int] = 100_000
    #: Maximum states any single automaton construction may create
    #: (subset construction, products, Glushkov positions).
    max_dfa_states: Optional[int] = 50_000
    #: Per-document wall-clock budget in seconds; ``None`` (the
    #: default) disables deadline checking entirely, keeping the hot
    #: path to a single ``is not None`` test.
    deadline_seconds: Optional[float] = None
    #: Maximum entries any single validation memo
    #: (:class:`repro.core.memo.ValidationMemo`) may hold; a requested
    #: memo capacity is clamped to this.  Entries are small tuples, so
    #: the default bounds memo memory at roughly a hundred megabytes.
    max_memo_entries: Optional[int] = 1_000_000

    def __post_init__(self) -> None:
        for name in (
            "max_document_bytes",
            "max_tree_depth",
            "max_entity_expansions",
            "max_dfa_states",
            "max_memo_entries",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {value}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0 or None, "
                f"got {self.deadline_seconds}"
            )

    def with_overrides(self, **changes) -> "Limits":
        """A copy with the given fields replaced (CLI knob plumbing)."""
        return replace(self, **changes)

    def deadline(self) -> Optional["Deadline"]:
        """A fresh per-document deadline, or ``None`` when unlimited."""
        return Deadline.start(self.deadline_seconds)


#: The guard configuration active when callers pass ``limits=None``.
DEFAULT_LIMITS = Limits()

#: Every guard disabled — the pre-guard behaviour, for callers that
#: genuinely need it (trusted mega-documents, stress benchmarks).
UNLIMITED = Limits(
    max_document_bytes=None,
    max_tree_depth=None,
    max_entity_expansions=None,
    max_dfa_states=None,
    deadline_seconds=None,
    max_memo_entries=None,
)

_ambient: Limits = DEFAULT_LIMITS


def get_limits() -> Limits:
    """The process-wide ambient limits."""
    return _ambient


def set_limits(limits: Limits) -> Limits:
    """Replace the ambient limits; returns the previous value."""
    global _ambient
    previous = _ambient
    _ambient = limits
    return previous


@contextlib.contextmanager
def limits_scope(limits: Limits) -> Iterator[Limits]:
    """Temporarily install ``limits`` as the ambient configuration."""
    previous = set_limits(limits)
    try:
        yield limits
    finally:
        set_limits(previous)


def resolve_limits(limits: Optional[Limits]) -> Limits:
    """``limits`` itself, or the ambient configuration when ``None``."""
    return _ambient if limits is None else limits


class Deadline:
    """Counter-amortized wall-clock deadline token.

    One token covers one unit of work (typically one document: parse
    plus validate).  Hot loops call :meth:`tick` per element or event;
    only every :data:`stride`-th tick reads the clock, so the guard
    costs one integer increment and compare per call.  :meth:`check`
    reads the clock unconditionally (use at loop boundaries).
    """

    __slots__ = ("expires_at", "budget", "_count")

    #: Ticks between clock reads.  Small enough that even a severely
    #: skewed workload overshoots its deadline by only a few hundred
    #: elements' worth of processing.
    stride = 128

    def __init__(self, seconds: float):
        self.budget = seconds
        self.expires_at = time.monotonic() + seconds
        self._count = 0

    @classmethod
    def start(cls, seconds: Optional[float]) -> Optional["Deadline"]:
        """A running deadline, or ``None`` when ``seconds`` is ``None``."""
        return None if seconds is None else cls(seconds)

    def tick(self) -> None:
        """Amortized check: raises on expiry every ``stride``-th call."""
        self._count += 1
        if self._count >= self.stride:
            self._count = 0
            self.check()

    def check(self) -> None:
        """Unamortized check: raise if the deadline has passed."""
        if time.monotonic() > self.expires_at:
            raise DeadlineExceededError(
                f"per-document deadline of {self.budget:g}s exceeded"
            )

    def expired(self) -> bool:
        return time.monotonic() > self.expires_at

    def remaining(self) -> float:
        """Seconds left before expiry (never negative).

        This is how a *residual* budget propagates downstream: a caller
        that spent part of its deadline on admission or IO derives the
        child's ``Limits.deadline_seconds`` from ``remaining()`` instead
        of restarting the clock — the HTTP service hands exactly the
        unspent request budget to parsing and validation this way.
        """
        return max(0.0, self.expires_at - time.monotonic())


# -- shared guard checks ---------------------------------------------------------


def check_document_size(
    size: int, limits: Limits, *, what: str = "document"
) -> None:
    """Raise :class:`DocumentTooLargeError` when ``size`` exceeds the
    configured byte bound."""
    bound = limits.max_document_bytes
    if bound is not None and size > bound:
        raise DocumentTooLargeError(
            f"{what} is {size} bytes, exceeding the "
            f"max_document_bytes limit of {bound}"
        )


def check_depth(depth: int, limits: Limits, *, what: str = "element") -> None:
    """Raise :class:`DocumentTooDeepError` when nesting exceeds the
    configured depth bound."""
    bound = limits.max_tree_depth
    if bound is not None and depth > bound:
        raise DocumentTooDeepError(
            f"{what} nesting depth {depth} exceeds the "
            f"max_tree_depth limit of {bound}"
        )


def state_budget(limits: Optional[Limits] = None) -> Optional[int]:
    """The automaton state budget of ``limits`` (ambient by default)."""
    return resolve_limits(limits).max_dfa_states
