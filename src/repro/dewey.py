"""Dewey decimal numbering and the modification trie of Section 3.3.

The paper implements the ``modified(node)`` predicate by storing the Dewey
decimal number of every updated node in a trie; a node's subtree has been
modified iff the trie contains any key extending that node's number.  This
module provides both pieces:

* :class:`Dewey` — an immutable path of child ordinals, root = ``()``.
* :class:`DeweyTrie` — insertion of marked paths and the two queries the
  revalidation algorithm needs: *exact* marking and *subtree* marking.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple


class Dewey:
    """An immutable Dewey decimal number: the sequence of 0-based child
    positions from the root.  The root element is ``Dewey(())``.

    Dewey numbers sort in document order under tuple comparison, which the
    update machinery relies on when replaying edit scripts.
    """

    __slots__ = ("_path",)

    def __init__(self, path: Iterable[int] = ()):
        self._path = tuple(path)
        if any(step < 0 for step in self._path):
            raise ValueError(f"negative step in Dewey path {self._path!r}")

    @classmethod
    def parse(cls, text: str) -> "Dewey":
        """Parse ``"1.0.2"`` (or ``""`` for the root) into a Dewey number."""
        if text == "":
            return cls(())
        try:
            return cls(int(part) for part in text.split("."))
        except ValueError as exc:
            raise ValueError(f"bad Dewey number {text!r}") from exc

    @property
    def path(self) -> Tuple[int, ...]:
        return self._path

    @property
    def depth(self) -> int:
        return len(self._path)

    def child(self, ordinal: int) -> "Dewey":
        """The Dewey number of this node's ``ordinal``-th child."""
        if ordinal < 0:
            raise ValueError("child ordinal must be non-negative")
        return Dewey(self._path + (ordinal,))

    def parent(self) -> "Dewey":
        if not self._path:
            raise ValueError("the root has no parent")
        return Dewey(self._path[:-1])

    def is_root(self) -> bool:
        return not self._path

    def is_ancestor_of(self, other: "Dewey") -> bool:
        """Proper-ancestor test (a node is not its own ancestor)."""
        return (
            len(self._path) < len(other._path)
            and other._path[: len(self._path)] == self._path
        )

    def is_descendant_or_self(self, other: "Dewey") -> bool:
        return self._path[: len(other._path)] == other._path

    def __iter__(self) -> Iterator[int]:
        return iter(self._path)

    def __len__(self) -> int:
        return len(self._path)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Dewey) and self._path == other._path

    def __lt__(self, other: "Dewey") -> bool:
        return self._path < other._path

    def __le__(self, other: "Dewey") -> bool:
        return self._path <= other._path

    def __hash__(self) -> int:
        return hash(self._path)

    def __repr__(self) -> str:
        return f"Dewey({'.'.join(map(str, self._path)) or 'root'})"

    def __str__(self) -> str:
        return ".".join(map(str, self._path))


class _TrieNode:
    __slots__ = ("children", "marked")

    def __init__(self) -> None:
        self.children: dict[int, _TrieNode] = {}
        self.marked = False


class DeweyTrie:
    """Trie over Dewey numbers recording which nodes were updated.

    ``insert`` marks a node; ``contains`` asks whether that exact node was
    marked; ``subtree_modified`` asks whether the node *or any descendant*
    was marked — this is the paper's ``modified`` function.  All operations
    are O(depth of the queried node).
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, dewey: Dewey) -> None:
        node = self._root
        for step in dewey:
            node = node.children.setdefault(step, _TrieNode())
        if not node.marked:
            node.marked = True
            self._size += 1

    def _find(self, dewey: Dewey) -> Optional[_TrieNode]:
        node = self._root
        for step in dewey:
            node = node.children.get(step)
            if node is None:
                return None
        return node

    def contains(self, dewey: Dewey) -> bool:
        node = self._find(dewey)
        return node is not None and node.marked

    def subtree_modified(self, dewey: Dewey) -> bool:
        """True iff ``dewey`` or any descendant of it was inserted.

        This is the ``modified(v)`` predicate of Section 3.3: the trie is
        navigated according to the Dewey number of ``v``; any surviving
        trie branch below that point witnesses a modification.
        """
        node = self._find(dewey)
        if node is None:
            return False
        return node.marked or bool(node.children)

    def marked_paths(self) -> Iterator[Dewey]:
        """Yield every marked Dewey number in document order."""

        def walk(node: _TrieNode, prefix: Tuple[int, ...]) -> Iterator[Dewey]:
            if node.marked:
                yield Dewey(prefix)
            for step in sorted(node.children):
                yield from walk(node.children[step], prefix + (step,))

        yield from walk(self._root, ())
