"""Benchmark harness: experiment runners and table rendering."""

from repro.bench.harness import (
    run_dtd_index,
    run_experiment1,
    run_experiment2,
    run_table2,
    run_table3,
    run_tree_modifications,
    time_call,
)
from repro.bench.reporting import render_csv, render_table

__all__ = [
    "run_dtd_index",
    "run_experiment1",
    "run_experiment2",
    "run_table2",
    "run_table3",
    "run_tree_modifications",
    "time_call",
    "render_csv",
    "render_table",
]
