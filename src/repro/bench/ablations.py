"""Ablation experiments for the design choices DESIGN.md calls out.

* A1 — does the immediate decision automaton actually scan fewer symbols
  than a plain target-DFA rescan, and how does the win depend on how
  similar the schemas are?
* A2 — with-modifications strategy sweep: forward vs reverse vs plain
  scanning as the edit position moves through the string (Section 4.3's
  closing discussion).
* A4 — static preprocessing cost (``R_sub``/``R_nondis``/automata) as a
  function of schema size — the price paid once per schema pair.
"""

from __future__ import annotations

import random
import time
from typing import Sequence

from repro.automata.stringcast import Strategy, StringCastValidator
from repro.bench.harness import time_call
from repro.bench.reporting import render_table
from repro.remodel.glushkov import compile_dfa
from repro.remodel.parser import parse_content_model
from repro.schema.registry import SchemaPair
from repro.workloads.generators import random_schema, random_word


# -- A1: string cast vs plain rescan ------------------------------------------------

def _a1_word(length: int, rng: random.Random) -> list[str]:
    """A word of exactly ``length`` symbols in a,(b|c)*,d form."""
    middle = [rng.choice("bc") for _ in range(max(length - 2, 0))]
    return ["a", *middle, "d"][:max(length, 2)]


_A1_CASES = {
    # identical schemas: decided after 0 symbols
    "identical": ("(a,(b|c)*,d)", "(a,(b|c)*,d)"),
    # disjoint from the start: rejected after 0 symbols
    "disjoint": ("(a,(b|c)*,d)", "(e,(b|c)*,d)"),
    # subsumed outright: the whole source language fits the target
    "subsumed-start": ("(a,(b|c)*,d)", "(a,(b|c|d)*,d?)"),
    # decided mid-stream: the schemas differ only on the first symbol,
    # so one symbol settles it no matter how long the string is
    "after-one-symbol": ("((a|e),(b|c)*,d)", "(a,(b|c)*,d)"),
    # late constraint: the difference sits on the final symbol, so the
    # whole string must be scanned (the cast cannot beat the plain scan)
    "late-constraint": ("(a,(b|c)*,(d|e))", "(a,(b|c)*,d)"),
}


def run_string_cast(lengths: Sequence[int] = (10, 100, 1000),
                    *, seed: int = 7):
    rng = random.Random(seed)
    rows = []
    for case, (src, tgt) in _A1_CASES.items():
        alphabet = frozenset("abcde")
        source = compile_dfa(parse_content_model(src), alphabet)
        target = compile_dfa(parse_content_model(tgt), alphabet)
        validator = StringCastValidator(source, target)
        for length in lengths:
            word = _a1_word(length, rng)
            assert source.accepts(word), (case, length)
            result = validator.validate(word)
            plain_scan = validator.b_immed.scan(word)
            assert result.accepted == target.accepts(word)
            rows.append(
                {
                    "case": case,
                    "length": len(word),
                    "cast_symbols": result.symbols_scanned,
                    "plain_symbols": plain_scan.symbols_scanned,
                    "verdict": result.accepted,
                }
            )
    return rows


def report_string_cast(rows) -> str:
    return render_table(
        "A1 — symbols scanned: pair automaton (c_immed) vs target-only "
        "scan (b_immed)",
        ["case", "length", "cast symbols", "plain symbols"],
        [[row["case"], row["length"], row["cast_symbols"],
          row["plain_symbols"]] for row in rows],
        note=(
            "c_immed exploits the source promise: identical/subsumed "
            "residuals decide in O(1); late constraints degrade to the "
            "plain scan, never worse (Proposition 3)"
        ),
    )


# -- A2: edit position sweep ---------------------------------------------------------

def run_mods_position(length: int = 2000,
                      positions: Sequence[float] = (0.0, 0.25, 0.5,
                                                    0.75, 1.0)):
    """Replace one symbol at varying relative positions of a long string
    and count symbols scanned per strategy."""
    alphabet = frozenset("ab")
    # Both endpoints constrained, so neither scanning direction gets a
    # free universal residual.
    dfa = compile_dfa(parse_content_model("a,(a|b)*,b"), alphabet)
    from repro.automata.stringcast import StringUpdateRevalidator

    validator = StringUpdateRevalidator(dfa)
    rng = random.Random(3)
    base = ["a"] + [rng.choice("ab") for _ in range(length - 2)] + ["b"]
    assert dfa.accepts(base)
    rows = []
    for fraction in positions:
        # Flip a symbol inside the free middle region.
        index = 1 + min(int(fraction * (length - 3)), length - 3)
        modified = list(base)
        modified[index] = "a" if modified[index] == "b" else "b"
        expected = dfa.accepts(modified)
        row = {"position": fraction, "expected": expected}
        for strategy in (Strategy.FORWARD, Strategy.REVERSE,
                         Strategy.PLAIN, Strategy.AUTO):
            result = validator.validate_modified(
                base, modified, strategy=strategy
            )
            assert result.accepted == expected
            key = strategy.value
            row[f"{key}_symbols"] = result.symbols_scanned
            if strategy is Strategy.AUTO:
                row["auto_choice"] = result.strategy.value
        rows.append(row)
    return rows


def report_mods_position(rows) -> str:
    return render_table(
        "A2 — with-modifications scanning: symbols scanned by strategy "
        "(1 edit in a 2000-symbol string)",
        ["edit at", "forward", "reverse", "plain", "auto", "auto picked"],
        [[f"{row['position']:.0%}", row["forward_symbols"],
          row["reverse_symbols"], row["plain_symbols"],
          row["auto_symbols"], row["auto_choice"]] for row in rows],
        note=(
            "forward pays for edits near the end, reverse for edits near "
            "the start; auto picks the cheaper direction (Section 4.3)"
        ),
    )


# -- A4: preprocessing cost -----------------------------------------------------------

def run_precompute(sizes: Sequence[int] = (4, 8, 16, 32), *, seed: int = 11,
                   repeat: int = 3):
    rows = []
    for size in sizes:
        rng = random.Random(seed + size)
        source = None
        target = None
        for _ in range(20):
            try:
                source = random_schema(
                    rng,
                    num_labels=size,
                    num_complex=size,
                    num_simple=max(2, size // 4),
                )
                target = random_schema(
                    rng,
                    num_labels=size,
                    num_complex=size,
                    num_simple=max(2, size // 4),
                )
                break
            except Exception:
                continue
        assert source is not None and target is not None

        def build():
            pair = SchemaPair(source, target)
            pair.warm()
            return pair

        elapsed = time_call(build, repeat=repeat)
        pair = build()
        rows.append(
            {
                "types": len(source.types) + len(target.types),
                "labels": len(source.alphabet | target.alphabet),
                "build_ms": elapsed * 1e3,
                "r_sub": len(pair.r_sub),
                "r_nondis": len(pair.r_nondis),
                "machines": len(pair._string_casts),
            }
        )
    return rows


def report_precompute(rows) -> str:
    return render_table(
        "A4 — static preprocessing cost vs schema size",
        ["types", "labels", "build ms", "|R_sub|", "|R_nondis|",
         "cast machines"],
        [[row["types"], row["labels"], row["build_ms"], row["r_sub"],
          row["r_nondis"], row["machines"]] for row in rows],
        note=(
            "paid once per schema pair, amortized over every document; "
            "independent of document size (Section 1/7)"
        ),
    )


# -- A6: tree-level content checking mode ------------------------------------------

def run_content_mode(sizes: Sequence[int] = (50, 200, 1000), *,
                     repeat: int = 5):
    """CastValidator with Section 4 string casting vs the paper's
    modified-Xerces configuration (plain target-DFA content checks).

    The paper deliberately did *not* use its own Section 4 machinery in
    the prototype ("to perform a fair comparison with Xerces"); this
    ablation quantifies what that left on the table.
    """
    from repro.baselines.full import FullValidator
    from repro.core.cast import CastValidator
    from repro.schema.registry import SchemaPair
    from repro.workloads import purchase_orders as po

    pair = SchemaPair(
        po.source_schema_experiment2(), po.target_schema_experiment2()
    )
    pair.warm()
    with_cast = CastValidator(pair, use_string_cast=True)
    plain = CastValidator(pair, use_string_cast=False)
    full = FullValidator(pair.target)
    rows = []
    for count in sizes:
        doc = po.make_purchase_order(count)
        cast_report = with_cast.validate(doc)
        plain_report = plain.validate(doc)
        assert cast_report.valid and plain_report.valid
        rows.append(
            {
                "items": count,
                "cast_ms": time_call(lambda: with_cast.validate(doc),
                                     repeat=repeat) * 1e3,
                "plain_ms": time_call(lambda: plain.validate(doc),
                                      repeat=repeat) * 1e3,
                "full_ms": time_call(lambda: full.validate(doc),
                                     repeat=repeat) * 1e3,
                "cast_symbols": cast_report.stats.content_symbols_scanned,
                "plain_symbols": plain_report.stats.content_symbols_scanned,
            }
        )
    return rows


def report_content_mode(rows) -> str:
    return render_table(
        "A6 — tree cast content checking: c_immed vs plain target scan "
        "(Experiment 2 workload)",
        ["items", "c_immed ms", "plain ms", "full ms",
         "c_immed symbols", "plain symbols"],
        [[row["items"], row["cast_ms"], row["plain_ms"], row["full_ms"],
          row["cast_symbols"], row["plain_symbols"]] for row in rows],
        note=(
            "the paper's prototype used the plain configuration; the "
            "Section 4 automata additionally cut content-symbol scans"
        ),
    )


def main() -> None:  # pragma: no cover - exercised via CLI
    print(report_string_cast(run_string_cast()))
    print()
    print(report_mods_position(run_mods_position()))
    print()
    print(report_precompute(run_precompute()))
    print()
    print(report_content_mode(run_content_mode()))


if __name__ == "__main__":  # pragma: no cover
    main()
