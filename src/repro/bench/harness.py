"""Experiment runners behind the benchmark suite.

Each ``run_*`` function reproduces one table or figure of the paper (or
one ablation from DESIGN.md) and returns structured rows; the pytest
benchmarks time the hot loops, and the ``__main__`` harness
(``python -m repro.bench.harness``) prints every paper artifact with the
paper's numbers alongside ours.

Timing here is wall-clock ``perf_counter`` over ``repeat`` runs taking
the minimum — adequate for the shape claims (constant vs linear, who is
faster); statistical rigor for single numbers comes from
pytest-benchmark in ``benchmarks/``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.full import FullValidator
from repro.baselines.preprocessed import PreprocessedIncrementalValidator
from repro.core.cast import CastValidator
from repro.core.castmods import CastWithModificationsValidator
from repro.core.dtdcast import DTDCastValidator
from repro.core.updates import UpdateSession
from repro.core.validator import validate_document
from repro.schema.dtd import parse_dtd
from repro.schema.registry import SchemaPair
from repro.workloads import purchase_orders as po
from repro.bench.reporting import render_table


def time_call(fn: Callable[[], object], *, repeat: int = 5) -> float:
    """Minimum wall-clock seconds over ``repeat`` invocations."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- E1: Figure 3a ---------------------------------------------------------------

def run_experiment1(
    item_counts: Sequence[int] = po.PAPER_ITEM_COUNTS, *, repeat: int = 5
):
    """Figure 3a: validation time vs item count, billTo optional→required."""
    pair = SchemaPair(
        po.source_schema_experiment1(), po.target_schema_experiment1()
    )
    pair.warm()
    cast = CastValidator(pair)
    full = FullValidator(pair.target)
    rows = []
    for count in item_counts:
        doc = po.make_purchase_order(count)
        cast_report = cast.validate(doc)
        full_report = full.validate(doc)
        assert cast_report.valid and full_report.valid
        rows.append(
            {
                "items": count,
                "cast_ms": time_call(lambda: cast.validate(doc),
                                     repeat=repeat) * 1e3,
                "full_ms": time_call(lambda: full.validate(doc),
                                     repeat=repeat) * 1e3,
                "cast_nodes": cast_report.stats.nodes_visited,
                "full_nodes": full_report.stats.nodes_visited,
            }
        )
    return rows


def report_experiment1(rows) -> str:
    return render_table(
        "Figure 3a — Experiment 1: billTo optional -> required",
        ["items", "cast ms", "full ms", "speedup",
         "cast nodes", "full nodes"],
        [
            [
                row["items"],
                row["cast_ms"],
                row["full_ms"],
                row["full_ms"] / max(row["cast_ms"], 1e-9),
                row["cast_nodes"],
                row["full_nodes"],
            ]
            for row in rows
        ],
        note=(
            "paper: cast time constant in document size, full validation "
            "linear (no absolute times reported in the text)"
        ),
    )


# -- E2: Figure 3b ---------------------------------------------------------------

def run_experiment2(
    item_counts: Sequence[int] = po.PAPER_ITEM_COUNTS, *, repeat: int = 5
):
    """Figure 3b: quantity maxExclusive 200 -> 100."""
    pair = SchemaPair(
        po.source_schema_experiment2(), po.target_schema_experiment2()
    )
    pair.warm()
    cast = CastValidator(pair)
    full = FullValidator(pair.target)
    rows = []
    for count in item_counts:
        doc = po.make_purchase_order(count)
        cast_report = cast.validate(doc)
        full_report = full.validate(doc)
        assert cast_report.valid and full_report.valid
        rows.append(
            {
                "items": count,
                "cast_ms": time_call(lambda: cast.validate(doc),
                                     repeat=repeat) * 1e3,
                "full_ms": time_call(lambda: full.validate(doc),
                                     repeat=repeat) * 1e3,
                "cast_nodes": cast_report.stats.nodes_visited,
                "full_nodes": full_report.stats.nodes_visited,
            }
        )
    return rows


def report_experiment2(rows) -> str:
    return render_table(
        "Figure 3b — Experiment 2: quantity maxExclusive 200 -> 100",
        ["items", "cast ms", "full ms", "speedup"],
        [
            [
                row["items"],
                row["cast_ms"],
                row["full_ms"],
                row["full_ms"] / max(row["cast_ms"], 1e-9),
            ]
            for row in rows
        ],
        note="paper: both linear; schema cast about 30% faster than Xerces",
    )


# -- E3: Table 2 -----------------------------------------------------------------

def run_table2(item_counts: Sequence[int] = po.PAPER_ITEM_COUNTS):
    """Table 2: serialized file sizes of the input documents."""
    rows = []
    for count in item_counts:
        size = po.document_size_bytes(po.make_purchase_order(count))
        rows.append(
            {
                "items": count,
                "bytes": size,
                "paper_bytes": po.PAPER_TABLE2_FILE_SIZES[count],
            }
        )
    return rows


def report_table2(rows) -> str:
    return render_table(
        "Table 2 — input document file sizes",
        ["items", "ours (bytes)", "paper (bytes)", "ratio"],
        [
            [
                row["items"],
                row["bytes"],
                row["paper_bytes"],
                row["bytes"] / row["paper_bytes"],
            ]
            for row in rows
        ],
        note=(
            "absolute sizes differ by a constant factor (whitespace and "
            "address text); linear growth per item matches"
        ),
    )


# -- E4: Table 3 -----------------------------------------------------------------

def run_table3(item_counts: Sequence[int] = po.PAPER_ITEM_COUNTS):
    """Table 3: nodes traversed during validation in Experiment 2."""
    pair = SchemaPair(
        po.source_schema_experiment2(), po.target_schema_experiment2()
    )
    cast = CastValidator(pair)
    full = FullValidator(pair.target)
    rows = []
    for count in item_counts:
        doc = po.make_purchase_order(count)
        cast_nodes = cast.validate(doc).stats.nodes_visited
        full_nodes = full.validate(doc).stats.nodes_visited
        paper_cast, paper_full = po.PAPER_TABLE3_NODES[count]
        rows.append(
            {
                "items": count,
                "cast_nodes": cast_nodes,
                "full_nodes": full_nodes,
                "paper_cast": paper_cast,
                "paper_full": paper_full,
            }
        )
    return rows


def report_table3(rows) -> str:
    return render_table(
        "Table 3 — nodes traversed in Experiment 2",
        ["items", "cast", "full", "ours ratio",
         "paper cast", "paper full", "paper ratio"],
        [
            [
                row["items"],
                row["cast_nodes"],
                row["full_nodes"],
                row["cast_nodes"] / row["full_nodes"],
                row["paper_cast"],
                row["paper_full"],
                row["paper_cast"] / row["paper_full"],
            ]
            for row in rows
        ],
        note=(
            "both columns linear in item count and cast < full, as in the "
            "paper; our counters exclude the DOM-navigation nodes Xerces "
            "counts, hence a lower absolute ratio"
        ),
    )


# -- A5: tree modifications ablation ----------------------------------------------

def run_tree_modifications(
    item_count: int = 200,
    edit_counts: Sequence[int] = (1, 5, 25, 100),
    *,
    seed: int = 42,
    repeat: int = 3,
):
    """Cast-with-modifications vs full revalidation vs preprocessing
    incremental validator, sweeping the number of edits."""
    schema = po.target_schema_experiment2()
    pair = SchemaPair(schema, schema)
    pair.warm()
    validator = CastWithModificationsValidator(pair)
    full = FullValidator(schema)
    rows = []
    for edits in edit_counts:
        rng = random.Random(seed)

        def edited_session():
            doc = po.make_purchase_order(item_count)
            session = UpdateSession(doc)
            items = session.document.root.find("items")
            for i in range(edits):
                item = items.children[rng.randrange(len(items.children))]
                quantity = item.find("quantity")
                session.replace_text(
                    quantity.children[0], str(1 + rng.randrange(99))
                )
            return session

        session = edited_session()
        report = validator.validate(session)
        assert report.valid
        result = session.result_document()
        cast_ms = time_call(lambda: validator.validate(session),
                            repeat=repeat) * 1e3
        full_ms = time_call(lambda: full.validate(result),
                            repeat=repeat) * 1e3
        # Memory: preprocessing validator must annotate every element.
        preprocessor = PreprocessedIncrementalValidator(schema)
        preprocessor.preprocess(po.make_purchase_order(item_count))
        rows.append(
            {
                "edits": edits,
                "cast_ms": cast_ms,
                "full_ms": full_ms,
                "cast_nodes": report.stats.nodes_visited,
                "full_nodes": full.validate(result).stats.nodes_visited,
                "preproc_cells": preprocessor.memory_cells(),
                "pair_state": len(pair.r_sub) + len(pair.r_nondis),
            }
        )
    return rows


def report_tree_modifications(rows) -> str:
    return render_table(
        "A5 — cast-with-modifications vs full revalidation "
        "(200-item document)",
        ["edits", "cast ms", "full ms", "cast nodes", "full nodes",
         "preproc cells", "schema-pair cells"],
        [
            [
                row["edits"],
                row["cast_ms"],
                row["full_ms"],
                row["cast_nodes"],
                row["full_nodes"],
                row["preproc_cells"],
                row["pair_state"],
            ]
            for row in rows
        ],
        note=(
            "the preprocessing baseline holds per-node state (grows with "
            "the document); the schema-pair state does not"
        ),
    )


# -- A3: DTD label-index mode -----------------------------------------------------

def _dtd_index_pair() -> SchemaPair:
    """DTD-style pair where only the item *value* type narrows (string →
    positiveInteger): every item instance needs a check, nothing else."""
    from repro.schema.model import Schema, complex_type
    from repro.schema.simple import builtin

    def build(item_type, name):
        return Schema(
            {
                "po": complex_type("po", "(shipTo,billTo,items)", {
                    "shipTo": "addr", "billTo": "addr", "items": "items",
                }),
                "addr": complex_type("addr", "(name)", {"name": "text"}),
                "items": complex_type("items", "(item*)", {"item": "item"}),
                "item": item_type,
                "text": builtin("string"),
            },
            {"po": "po"},
            name=name,
        )

    return SchemaPair(
        build(builtin("string"), "dtd-item-string"),
        build(builtin("positiveInteger"), "dtd-item-int"),
    )


def run_dtd_index(sizes: Sequence[int] = (10, 100, 1000), *, repeat: int = 5):
    pair = _dtd_index_pair()
    tree_cast = CastValidator(pair)
    index_cast = DTDCastValidator(pair)
    full = FullValidator(pair.target)
    rows = []
    from repro.xmltree.dom import Document, element

    for count in sizes:
        doc = Document(
            element(
                "po",
                element("shipTo", element("name", "a")),
                element("billTo", element("name", "b")),
                element(
                    "items",
                    *(element("item", str(i + 1)) for i in range(count)),
                ),
            )
        )
        doc.elements_with_label("item")  # build the index up front
        tree_report = tree_cast.validate(doc)
        index_report = index_cast.validate(doc)
        full_report = full.validate(doc)
        assert (tree_report.valid == index_report.valid
                == full_report.valid is True)
        rows.append(
            {
                "items": count,
                "tree_ms": time_call(lambda: tree_cast.validate(doc),
                                     repeat=repeat) * 1e3,
                "index_ms": time_call(lambda: index_cast.validate(doc),
                                      repeat=repeat) * 1e3,
                "full_ms": time_call(lambda: full.validate(doc),
                                     repeat=repeat) * 1e3,
                "tree_nodes": tree_report.stats.nodes_visited,
                "index_nodes": index_report.stats.nodes_visited,
                "full_nodes": full_report.stats.nodes_visited,
            }
        )
    return rows


def report_dtd_index(rows) -> str:
    return render_table(
        "A3 — DTD label-index mode vs tree-walk cast vs full validation",
        ["items", "index ms", "tree ms", "full ms",
         "index nodes", "tree nodes", "full nodes"],
        [[row["items"], row["index_ms"], row["tree_ms"], row["full_ms"],
          row["index_nodes"], row["tree_nodes"], row["full_nodes"]]
         for row in rows],
        note=(
            "only the item value type changed: the label index jumps "
            "straight to item instances; the tree walk additionally "
            "descends through po/items; full validation re-checks "
            "everything (Section 3.4)"
        ),
    )


def main() -> None:  # pragma: no cover - exercised via CLI
    print(report_table2(run_table2()))
    print()
    print(report_experiment1(run_experiment1()))
    print()
    print(report_experiment2(run_experiment2()))
    print()
    print(report_table3(run_table3()))
    print()
    print(report_tree_modifications(run_tree_modifications()))
    print()
    print(report_dtd_index(run_dtd_index()))


if __name__ == "__main__":  # pragma: no cover
    main()
