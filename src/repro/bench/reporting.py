"""Rendering and persistence for the benchmark harness.

Every experiment prints a fixed-width table with the paper's reported
numbers (where the paper reports any) next to our measurements, so the
shape comparison is visible directly in the bench output and can be
pasted into EXPERIMENTS.md.  :func:`update_bench_json` additionally
persists machine-readable records (``BENCH_cast.json`` at the repo
root) that CI uploads as an artifact.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterable, Mapping, Optional, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    note: str = "",
) -> str:
    """Render rows as a fixed-width table with a title banner."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:,.0f}"
        if cell >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def render_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """CSV rendering of the same rows (for plotting elsewhere)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(str(cell) for cell in row))
    return "\n".join(lines)


def _kernel_backend() -> str:
    """The active validation-kernel backend, for record stamping."""
    try:
        from repro.kernel import backend_name

        return backend_name()
    except Exception:
        return "unknown"


def update_bench_json(
    path: str,
    entries: Mapping[str, Mapping[str, object]],
    *,
    source: str,
    chain_length: Optional[int] = None,
) -> str:
    """Merge benchmark records into the machine-readable results file.

    ``entries`` maps a benchmark name to its JSON-serializable record;
    each record is stamped with ``source`` (the emitting script),
    ``cpu_count`` (``os.cpu_count()`` of the measuring machine, so a
    scaling number can never be read without its hardware context), and
    ``kernel_backend`` (``py`` or ``compiled``, so a throughput number
    can never be read without knowing which kernel produced it).
    The file layout is ``{"version": 1, "results": {name: record}}``;
    records for benchmarks not named in ``entries`` are preserved, so
    several scripts can share one file.  A missing or corrupt file is
    started fresh, and the write goes through a temporary file plus
    atomic rename so a crash never leaves half-written JSON.

    Returns ``path``.
    """
    results: dict[str, object] = {}
    try:
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict) and isinstance(
            loaded.get("results"), dict
        ):
            results = dict(loaded["results"])
    except (OSError, ValueError):
        pass
    for name, record in entries.items():
        stamped = {
            **record,
            "source": source,
            "cpu_count": os.cpu_count(),
            "kernel_backend": _kernel_backend(),
        }
        if chain_length is not None:
            # Evolution-chain records carry the schema count, so a
            # chain speedup is never read without knowing n.
            stamped["chain_length"] = chain_length
        results[name] = stamped
    data = {"version": 1, "results": results}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path
