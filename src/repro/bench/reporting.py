"""Plain-text table rendering for the benchmark harness.

Every experiment prints a fixed-width table with the paper's reported
numbers (where the paper reports any) next to our measurements, so the
shape comparison is visible directly in the bench output and can be
pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    note: str = "",
) -> str:
    """Render rows as a fixed-width table with a title banner."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:,.0f}"
        if cell >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def render_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """CSV rendering of the same rows (for plotting elsewhere)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(str(cell) for cell in row))
    return "\n".join(lines)
