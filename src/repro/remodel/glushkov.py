"""Glushkov position automaton and one-unambiguity checking.

XML Schema content models must satisfy Unique Particle Attribution, which
is exactly Brüggemann-Klein & Wood's *one-unambiguity* [6 in the paper]:
the Glushkov automaton of the content model is deterministic.  The paper
leans on this ("content models of XML Schema types are deterministic") to
run content models as DFAs and to obtain its optimality results.

This module linearizes a (normalized) expression into positions, computes
the classical ``first``/``last``/``follow`` sets, and:

* :func:`glushkov_nfa` — builds the position NFA for any expression;
* :func:`check_one_unambiguous` — reports the competing symbol if the
  model is ambiguous;
* :func:`compile_dfa` — the main entry point: deterministic models map
  straight onto their Glushkov automaton (plus sink); ambiguous models
  (allowed in hand-built abstract schemas, ``strict=False``) fall back to
  subset construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import AmbiguousContentModelError, StateBudgetExceededError
from repro.remodel.ast import (
    Alt,
    Epsilon,
    Regex,
    Seq,
    Star,
    Symbol,
    normalize,
)


def _analyze(expr: Regex) -> "_Linearized":
    """Normalize and linearize, converting interpreter stack exhaustion
    on pathologically nested models (large ``maxOccurs`` bounds lower to
    deeply right-nested optionals) into the typed budget error instead
    of a raw :class:`RecursionError`."""
    try:
        return linearize(normalize(expr))
    except RecursionError:
        raise StateBudgetExceededError(
            "content model nests too deeply to compile (reduce maxOccurs "
            "bounds or expression nesting)"
        ) from None


@dataclass
class _Linearized:
    """Position analysis of a core expression.

    Positions are numbered from 1 (0 is reserved for the Glushkov start
    state); ``symbol_at[p]`` is the element label at position ``p``.
    """

    nullable: bool
    first: frozenset[int]
    last: frozenset[int]
    follow: dict[int, set[int]]
    symbol_at: dict[int, str]


def linearize(expr: Regex) -> _Linearized:
    """Compute positions and first/last/follow for a *core* expression
    (no :class:`~repro.remodel.ast.Repeat` nodes — normalize first)."""
    counter = [0]
    symbol_at: dict[int, str] = {}
    follow: dict[int, set[int]] = {}

    def visit(node: Regex) -> tuple[bool, frozenset[int], frozenset[int]]:
        if isinstance(node, Epsilon):
            return True, frozenset(), frozenset()
        if isinstance(node, Symbol):
            counter[0] += 1
            position = counter[0]
            symbol_at[position] = node.name
            follow[position] = set()
            single = frozenset((position,))
            return False, single, single
        if isinstance(node, Seq):
            nullable, first, last = visit(node.parts[0])
            for part in node.parts[1:]:
                p_nullable, p_first, p_last = visit(part)
                for position in last:
                    follow[position] |= p_first
                first = first | p_first if nullable else first
                last = last | p_last if p_nullable else p_last
                nullable = nullable and p_nullable
            return nullable, first, last
        if isinstance(node, Alt):
            nullable = False
            first: frozenset[int] = frozenset()
            last: frozenset[int] = frozenset()
            for part in node.parts:
                p_nullable, p_first, p_last = visit(part)
                nullable = nullable or p_nullable
                first |= p_first
                last |= p_last
            return nullable, first, last
        if isinstance(node, Star):
            _, first, last = visit(node.child)
            for position in last:
                follow[position] |= first
            return True, first, last
        raise TypeError(
            f"non-core node {type(node).__name__}; call normalize() first"
        )

    nullable, first, last = visit(expr)
    return _Linearized(nullable, first, last, follow, symbol_at)


def check_one_unambiguous(expr: Regex) -> Optional[str]:
    """Return a symbol witnessing ambiguity, or None if the expression is
    one-unambiguous (UPA-valid)."""
    info = _analyze(expr)
    sources: list[frozenset[int] | set[int]] = [info.first]
    sources.extend(info.follow.values())
    for positions in sources:
        seen: dict[str, int] = {}
        for position in positions:
            symbol = info.symbol_at[position]
            if symbol in seen and seen[symbol] != position:
                return symbol
            seen[symbol] = position
    return None


def glushkov_nfa(expr: Regex) -> NFA:
    """The Glushkov (position) automaton as an NFA without ε-transitions.

    State 0 is the start; state ``p`` means "just read position ``p``".
    """
    info = _analyze(expr)
    num_states = len(info.symbol_at) + 1
    transitions: dict[tuple[int, str], set[int]] = {}
    for position in info.first:
        transitions.setdefault((0, info.symbol_at[position]), set()).add(position)
    for source, targets in info.follow.items():
        for position in targets:
            transitions.setdefault(
                (source, info.symbol_at[position]), set()
            ).add(position)
    finals = set(info.last)
    if info.nullable:
        finals.add(0)
    alphabet = set(info.symbol_at.values()) or expr.symbols()
    return NFA(alphabet, num_states, transitions, starts=(0,), finals=finals)


def compile_dfa(
    expr: Regex,
    alphabet: Optional[frozenset[str]] = None,
    *,
    strict: bool = False,
) -> DFA:
    """Compile a content model to a complete, minimized DFA.

    If the Glushkov automaton is deterministic (always, for UPA-valid
    models) it is used directly; otherwise ``strict=True`` raises
    :class:`AmbiguousContentModelError` and ``strict=False`` falls back
    to subset construction.

    Args:
        expr: the content model (``Repeat`` sugar allowed).
        alphabet: optional superalphabet for the resulting DFA.
        strict: enforce one-unambiguity (XSD semantics).
    """
    info = _analyze(expr)
    sigma = frozenset(info.symbol_at.values())
    if alphabet is not None:
        if not frozenset(alphabet) >= sigma:
            raise ValueError("alphabet must cover the expression's symbols")
        sigma_full = frozenset(alphabet)
    else:
        sigma_full = sigma

    transitions: dict[tuple[int, str], int] = {}
    deterministic = True
    conflict_symbol = ""

    def add(source: int, positions) -> None:
        nonlocal deterministic, conflict_symbol
        for position in positions:
            symbol = info.symbol_at[position]
            existing = transitions.get((source, symbol))
            if existing is not None and existing != position:
                deterministic = False
                conflict_symbol = symbol
            transitions[(source, symbol)] = position

    add(0, info.first)
    for source, targets in info.follow.items():
        add(source, targets)

    if not deterministic:
        if strict:
            raise AmbiguousContentModelError(
                f"content model {expr.to_source()} is not one-unambiguous: "
                f"two particles compete for {conflict_symbol!r}",
                conflict_symbol,
            )
        dfa = glushkov_nfa(expr).determinize().with_alphabet(sigma_full)
        return dfa.minimize()

    finals = set(info.last)
    if info.nullable:
        finals.add(0)
    dfa = DFA.from_partial(
        sigma_full, len(info.symbol_at) + 1, transitions, 0, finals
    )
    return dfa.minimize()
