"""Brzozowski-derivative matcher — the semantic oracle for content models.

``matches(expr, word)`` decides membership directly on the expression
tree, with no automaton construction.  It is deliberately independent of
the Glushkov/DFA pipeline so property-based tests can cross-check the two
implementations against each other; it is also the fallback matcher for
expressions too large to compile.
"""

from __future__ import annotations

from typing import Iterable

from repro.remodel.ast import (
    EPSILON,
    Alt,
    Epsilon,
    Regex,
    Repeat,
    Seq,
    Star,
    Symbol,
    alt,
    repeat,
    seq,
    star,
)


class _Never(Regex):
    """The empty *language* (∅) — internal to the derivative engine."""

    __slots__ = ()

    def nullable(self) -> bool:
        return False

    def symbols(self) -> frozenset[str]:
        return frozenset()

    def to_source(self) -> str:
        return "<never>"

    def _size(self) -> int:
        return 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Never)

    def __hash__(self) -> int:
        return hash(_Never)


NEVER = _Never()


def _seq2(left: Regex, right: Regex) -> Regex:
    if left is NEVER or right is NEVER:
        return NEVER
    if isinstance(left, Epsilon):
        return right
    if isinstance(right, Epsilon):
        return left
    return seq(left, right)


def _alt2(left: Regex, right: Regex) -> Regex:
    if left is NEVER:
        return right
    if right is NEVER:
        return left
    if left == right:
        return left
    return alt(left, right)


def derivative(expr: Regex, symbol: str) -> Regex:
    """The Brzozowski derivative ∂σ(expr): { w | σ·w ∈ L(expr) }."""
    if isinstance(expr, (_Never, Epsilon)):
        return NEVER
    if isinstance(expr, Symbol):
        return EPSILON if expr.name == symbol else NEVER
    if isinstance(expr, Alt):
        result: Regex = NEVER
        for part in expr.parts:
            result = _alt2(result, derivative(part, symbol))
        return result
    if isinstance(expr, Seq):
        head, tail = expr.parts[0], expr.parts[1:]
        rest = tail[0] if len(tail) == 1 else Seq(tail)
        result = _seq2(derivative(head, symbol), rest)
        if head.nullable():
            result = _alt2(result, derivative(rest, symbol))
        return result
    if isinstance(expr, Star):
        return _seq2(derivative(expr.child, symbol), star(expr.child))
    if isinstance(expr, Repeat):
        # When the child is nullable, mandatory occurrences can always be
        # satisfied by ε, so e{m,M} ≡ e{0,M}; with that reduction the
        # derivative uniformly consumes σ inside the first non-empty
        # occurrence: ∂σ(e{m,M}) = ∂σ(e) · e{max(m-1,0), M-1}.
        low = 0 if expr.child.nullable() else expr.low
        if expr.high == 0:
            return NEVER
        inner = derivative(expr.child, symbol)
        if inner is NEVER:
            return NEVER
        high = None if expr.high is None else expr.high - 1
        remaining = repeat(expr.child, max(low - 1, 0), high)
        return _seq2(inner, remaining)
    raise TypeError(f"unknown regex node {expr!r}")


def matches(expr: Regex, word: Iterable[str]) -> bool:
    """Semantic membership test via iterated derivatives."""
    current = expr
    for symbol in word:
        current = derivative(current, symbol)
        if current is NEVER:
            return False
    return current.nullable()
