"""DFA → regular expression extraction by state elimination.

Used by the productivity rewrite of Section 3: pruning a content model
to ``L(regexp_τ) ∩ ProdLabels*`` is performed on the DFA (drop the
non-productive symbols, trim) and the result is turned back into a
content-model expression so the pruned schema is again a plain abstract
XML Schema.

The generalized-automaton edges carry ``Regex`` values (``None`` encodes
the empty language ∅, which the core AST deliberately lacks).  Smart
union/concatenation keeps the output reasonable; it is not guaranteed
minimal — downstream consumers compile it right back to a DFA anyway.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.dfa import DFA
from repro.remodel.ast import EPSILON, Epsilon, Regex, Star, alt, seq, star, sym


def _union(a: Optional[Regex], b: Optional[Regex]) -> Optional[Regex]:
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    return alt(a, b)


def _concat(*parts: Optional[Regex]) -> Optional[Regex]:
    flat: list[Regex] = []
    for part in parts:
        if part is None:
            return None
        if isinstance(part, Epsilon):
            continue
        flat.append(part)
    if not flat:
        return EPSILON
    return seq(*flat)


def _loop(body: Optional[Regex]) -> Regex:
    if body is None or isinstance(body, Epsilon):
        return EPSILON
    if isinstance(body, Star):
        return body
    return star(body)


def dfa_to_regex(dfa: DFA) -> Optional[Regex]:
    """A regular expression for ``L(dfa)``; None when the language is ∅.

    Note: an empty-string-only language yields :data:`EPSILON`.
    """
    trimmed = dfa.minimize()
    if trimmed.is_empty():
        return None
    n = trimmed.num_states
    init, final = n, n + 1  # two fresh endpoint states
    edges: dict[tuple[int, int], Regex] = {}

    def add(src: int, dst: int, expr: Regex) -> None:
        edges[(src, dst)] = _union(edges.get((src, dst)), expr)  # type: ignore[assignment]

    for q, row in enumerate(trimmed.transitions):
        for symbol, dst in row.items():
            add(q, dst, sym(symbol))
    add(init, trimmed.start, EPSILON)
    for q in trimmed.finals:
        add(q, final, EPSILON)

    # Eliminate original states, smallest fan-in*fan-out first (a common
    # heuristic that keeps the expression compact).
    remaining = set(range(n))
    while remaining:
        def cost(state: int) -> int:
            fan_in = sum(1 for (s, d) in edges if d == state and s != state)
            fan_out = sum(1 for (s, d) in edges if s == state and d != state)
            return fan_in * fan_out

        victim = min(remaining, key=cost)
        remaining.discard(victim)
        self_loop = _loop(edges.pop((victim, victim), None))
        incoming = [
            (s, expr) for (s, d), expr in edges.items()
            if d == victim and s != victim
        ]
        outgoing = [
            (d, expr) for (s, d), expr in edges.items()
            if s == victim and d != victim
        ]
        for (s, _) in incoming:
            edges.pop((s, victim))
        for (d, _) in outgoing:
            edges.pop((victim, d))
        for s, in_expr in incoming:
            for d, out_expr in outgoing:
                add(s, d, _concat(in_expr, self_loop, out_expr))  # type: ignore[arg-type]

    return edges.get((init, final))


def restrict_language(dfa: DFA, allowed: frozenset[str]) -> DFA:
    """A DFA for ``L(dfa) ∩ allowed*`` (over the original alphabet)."""
    rows = []
    sink = dfa.num_states
    for row in dfa.transitions:
        rows.append(
            {
                symbol: (dst if symbol in allowed else sink)
                for symbol, dst in row.items()
            }
        )
    rows.append({symbol: sink for symbol in dfa.alphabet})
    return DFA(dfa.alphabet, rows, dfa.start, dfa.finals).minimize()
