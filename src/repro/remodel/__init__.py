"""Content-model regular expressions: AST, parser, Glushkov compiler,
derivative-based semantic matcher."""

from repro.remodel.ast import (
    EPSILON,
    Alt,
    Epsilon,
    Regex,
    Repeat,
    Seq,
    Star,
    Symbol,
    alt,
    normalize,
    opt,
    plus,
    repeat,
    seq,
    star,
    sym,
)
from repro.remodel.derivative import matches
from repro.remodel.glushkov import (
    check_one_unambiguous,
    compile_dfa,
    glushkov_nfa,
)
from repro.remodel.parser import parse_content_model

__all__ = [
    "EPSILON",
    "Alt",
    "Epsilon",
    "Regex",
    "Repeat",
    "Seq",
    "Star",
    "Symbol",
    "alt",
    "normalize",
    "opt",
    "plus",
    "repeat",
    "seq",
    "star",
    "sym",
    "matches",
    "check_one_unambiguous",
    "compile_dfa",
    "glushkov_nfa",
    "parse_content_model",
]
