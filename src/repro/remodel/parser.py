"""Parser for content-model expressions in DTD syntax.

Accepts the DTD children-model grammar plus two extensions that make the
notation usable for hand-written abstract schemas and tests:

* bounded repetition ``a{2,5}``, ``a{3,}``, ``a{4}``;
* the empty group ``()`` denoting the ε-only (empty content) model.

Grammar (``|`` binds loosest)::

    expr    := term ("|" term)*
    term    := factor ("," factor)*
    factor  := atom postfix*
    atom    := NAME | "(" expr? ")"
    postfix := "?" | "*" | "+" | "{" INT ("," INT?)? "}"

``#PCDATA`` is accepted as an ordinary symbol token so the DTD front-end
can recognize mixed/simple content models itself.
"""

from __future__ import annotations

from repro.errors import ContentModelSyntaxError
from repro.remodel.ast import (
    EPSILON,
    Regex,
    alt,
    opt,
    plus,
    repeat,
    seq,
    star,
    sym,
)

_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:-#"
)


def parse_content_model(source: str) -> Regex:
    """Parse a content-model expression, e.g. ``"(shipTo,billTo?,items)"``."""
    parser = _ModelParser(source)
    expr = parser.parse_expr()
    parser.skip_ws()
    if not parser.at_end():
        raise ContentModelSyntaxError(
            f"trailing input {source[parser.pos:]!r}", parser.pos
        )
    return expr


class _ModelParser:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0

    # -- scanning helpers ----------------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= len(self.source)

    def peek(self) -> str:
        return self.source[self.pos] if self.pos < len(self.source) else ""

    def skip_ws(self) -> None:
        while self.peek() in (" ", "\t", "\r", "\n") and not self.at_end():
            self.pos += 1

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise ContentModelSyntaxError(
                f"expected {ch!r}, found {self.peek() or '<end>'!r}", self.pos
            )
        self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        while self.peek() in _NAME_CHARS and not self.at_end():
            self.pos += 1
        if self.pos == start:
            raise ContentModelSyntaxError(
                f"expected a name, found {self.peek() or '<end>'!r}", self.pos
            )
        return self.source[start : self.pos]

    def read_int(self) -> int:
        start = self.pos
        while self.peek().isdigit():
            self.pos += 1
        if self.pos == start:
            raise ContentModelSyntaxError("expected an integer", self.pos)
        return int(self.source[start : self.pos])

    # -- grammar --------------------------------------------------------------

    def parse_expr(self) -> Regex:
        parts = [self.parse_term()]
        while True:
            self.skip_ws()
            if self.peek() == "|":
                self.pos += 1
                parts.append(self.parse_term())
            else:
                break
        return alt(*parts) if len(parts) > 1 else parts[0]

    def parse_term(self) -> Regex:
        parts = [self.parse_factor()]
        while True:
            self.skip_ws()
            if self.peek() == ",":
                self.pos += 1
                parts.append(self.parse_factor())
            else:
                break
        return seq(*parts) if len(parts) > 1 else parts[0]

    def parse_factor(self) -> Regex:
        expr = self.parse_atom()
        while True:
            self.skip_ws()
            ch = self.peek()
            if ch == "?":
                self.pos += 1
                expr = opt(expr)
            elif ch == "*":
                self.pos += 1
                expr = star(expr)
            elif ch == "+":
                self.pos += 1
                expr = plus(expr)
            elif ch == "{":
                expr = self._parse_bounds(expr)
            else:
                return expr

    def _parse_bounds(self, expr: Regex) -> Regex:
        self.expect("{")
        self.skip_ws()
        low = self.read_int()
        self.skip_ws()
        high: int | None = low
        if self.peek() == ",":
            self.pos += 1
            self.skip_ws()
            high = self.read_int() if self.peek().isdigit() else None
            self.skip_ws()
        self.expect("}")
        try:
            return repeat(expr, low, high)
        except ValueError as exc:
            raise ContentModelSyntaxError(str(exc), self.pos) from exc

    def parse_atom(self) -> Regex:
        self.skip_ws()
        if self.peek() == "(":
            self.pos += 1
            self.skip_ws()
            if self.peek() == ")":
                self.pos += 1
                return EPSILON
            expr = self.parse_expr()
            self.skip_ws()
            self.expect(")")
            return expr
        return sym(self.read_name())
