"""Content-model regular expressions.

Abstract XML Schema types carry a regular expression ``regexp_τ`` over
element labels (Section 3 of the paper).  This module defines the AST for
those expressions:

* core forms — :class:`Epsilon`, :class:`Symbol`, :class:`Seq`,
  :class:`Alt`, :class:`Star`;
* one sugar form — :class:`Repeat` with ``minOccurs``/``maxOccurs``
  bounds, as written in XML Schema.  :func:`normalize` lowers ``Repeat``
  to the core forms using the nesting ``e{0,k} = (e (e ...)?)?`` which
  preserves one-unambiguity of UPA-valid models.

Expressions are immutable and hashable; ``to_source`` renders the DTD
content-model syntax that :mod:`repro.remodel.parser` reads back.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import StateBudgetExceededError
from repro.guards import state_budget

#: Hard cap on symbol positions produced by normalizing bounded repeats;
#: protects against pathological ``maxOccurs="100000"`` declarations.
#: The ambient ``Limits.max_dfa_states`` tightens this further when it
#: is smaller (positions become Glushkov automaton states one-for-one).
MAX_POSITIONS = 100_000


class Regex:
    """Base class for content-model expression nodes."""

    __slots__ = ()

    def nullable(self) -> bool:
        """Does the language contain the empty string?"""
        raise NotImplementedError

    def symbols(self) -> frozenset[str]:
        """The set of element labels occurring in the expression."""
        raise NotImplementedError

    def to_source(self) -> str:
        """Render in DTD content-model syntax."""
        raise NotImplementedError

    def _size(self) -> int:
        """Number of symbol positions after normalization (cost metric)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_source()!r})"

    def __str__(self) -> str:
        return self.to_source()


class Epsilon(Regex):
    """The empty-string expression (an empty content model)."""

    __slots__ = ()

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[str]:
        return frozenset()

    def to_source(self) -> str:
        return "()"

    def _size(self) -> int:
        return 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Epsilon)

    def __hash__(self) -> int:
        return hash(Epsilon)


class Symbol(Regex):
    """A single element label."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("symbol name must be non-empty")
        self.name = name

    def nullable(self) -> bool:
        return False

    def symbols(self) -> frozenset[str]:
        return frozenset((self.name,))

    def to_source(self) -> str:
        return self.name

    def _size(self) -> int:
        return 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Symbol) and self.name == other.name

    def __hash__(self) -> int:
        return hash((Symbol, self.name))


class Seq(Regex):
    """Concatenation of two or more sub-expressions."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Regex]):
        self.parts = tuple(parts)
        if len(self.parts) < 2:
            raise ValueError("Seq needs at least two parts; use seq()")

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def symbols(self) -> frozenset[str]:
        return frozenset().union(*(part.symbols() for part in self.parts))

    def to_source(self) -> str:
        return "(" + ",".join(part.to_source() for part in self.parts) + ")"

    def _size(self) -> int:
        return sum(part._size() for part in self.parts)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Seq) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash((Seq, self.parts))


class Alt(Regex):
    """Choice between two or more sub-expressions."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Regex]):
        self.parts = tuple(parts)
        if len(self.parts) < 2:
            raise ValueError("Alt needs at least two parts; use alt()")

    def nullable(self) -> bool:
        return any(part.nullable() for part in self.parts)

    def symbols(self) -> frozenset[str]:
        return frozenset().union(*(part.symbols() for part in self.parts))

    def to_source(self) -> str:
        return "(" + "|".join(part.to_source() for part in self.parts) + ")"

    def _size(self) -> int:
        return sum(part._size() for part in self.parts)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Alt) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash((Alt, self.parts))


class Star(Regex):
    """Kleene closure (zero or more repetitions)."""

    __slots__ = ("child",)

    def __init__(self, child: Regex):
        self.child = child

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[str]:
        return self.child.symbols()

    def to_source(self) -> str:
        return _group(self.child) + "*"

    def _size(self) -> int:
        return self.child._size()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Star) and self.child == other.child

    def __hash__(self) -> int:
        return hash((Star, self.child))


class Repeat(Regex):
    """Bounded repetition ``child{low, high}``; ``high=None`` = unbounded.

    This is the XML Schema ``minOccurs``/``maxOccurs`` particle and the
    only non-core node; :func:`normalize` removes it.
    """

    __slots__ = ("child", "low", "high")

    def __init__(self, child: Regex, low: int, high: Optional[int]):
        if low < 0:
            raise ValueError("minOccurs must be >= 0")
        if high is not None and high < low:
            raise ValueError(f"maxOccurs {high} < minOccurs {low}")
        self.child = child
        self.low = low
        self.high = high

    def nullable(self) -> bool:
        return self.low == 0 or self.child.nullable()

    def symbols(self) -> frozenset[str]:
        return self.child.symbols()

    def to_source(self) -> str:
        body = _group(self.child)
        if (self.low, self.high) == (0, 1):
            return body + "?"
        if (self.low, self.high) == (0, None):
            return body + "*"
        if (self.low, self.high) == (1, None):
            return body + "+"
        high = "" if self.high is None else str(self.high)
        return f"{body}{{{self.low},{high}}}"

    def _size(self) -> int:
        copies = self.low if self.high is None else self.high
        return max(copies, 1) * self.child._size()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Repeat)
            and (self.child, self.low, self.high)
            == (other.child, other.low, other.high)
        )

    def __hash__(self) -> int:
        return hash((Repeat, self.child, self.low, self.high))


def _group(expr: Regex) -> str:
    """Parenthesize compound operands of a postfix operator."""
    if isinstance(expr, (Symbol, Epsilon)):
        return expr.to_source()
    source = expr.to_source()
    if source.startswith("(") and source.endswith(")"):
        return source
    return f"({source})"


# -- convenience constructors ------------------------------------------------

EPSILON = Epsilon()


def sym(name: str) -> Symbol:
    return Symbol(name)


def seq(*parts: Regex) -> Regex:
    """Concatenation; flattens nested Seq and drops Epsilon units."""
    flat: list[Regex] = []
    for part in parts:
        if isinstance(part, Seq):
            flat.extend(part.parts)
        elif not isinstance(part, Epsilon):
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Seq(flat)


def alt(*parts: Regex) -> Regex:
    """Choice; flattens nested Alt."""
    flat: list[Regex] = []
    for part in parts:
        if isinstance(part, Alt):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        raise ValueError("alt() needs at least one alternative")
    if len(flat) == 1:
        return flat[0]
    return Alt(flat)


def star(child: Regex) -> Regex:
    if isinstance(child, (Star, Epsilon)):
        return child if isinstance(child, Star) else EPSILON
    return Star(child)


def plus(child: Regex) -> Regex:
    return Repeat(child, 1, None)


def opt(child: Regex) -> Regex:
    return Repeat(child, 0, 1)


def repeat(child: Regex, low: int, high: Optional[int]) -> Regex:
    if (low, high) == (1, 1):
        return child
    return Repeat(child, low, high)


def normalize(expr: Regex) -> Regex:
    """Lower :class:`Repeat` nodes to the core forms.

    ``e{m,∞}`` becomes ``e^m · e*`` and ``e{m,M}`` becomes
    ``e^m · (e (e ...)?)?`` with ``M-m`` nested optional copies, which
    keeps UPA-valid (one-unambiguous) models deterministic after
    expansion.  Raises :class:`StateBudgetExceededError` (a
    :class:`ValueError`) when the expansion would exceed
    :data:`MAX_POSITIONS` symbol positions or the ambient
    ``Limits.max_dfa_states`` budget, whichever is smaller.
    """
    budget = state_budget()
    cap = MAX_POSITIONS if budget is None else min(MAX_POSITIONS, budget)
    if expr._size() > cap:
        raise StateBudgetExceededError(
            f"content model expands to more than {cap} positions"
        )
    return _normalize(expr)


def _normalize(expr: Regex) -> Regex:
    if isinstance(expr, (Epsilon, Symbol)):
        return expr
    if isinstance(expr, Seq):
        return seq(*(_normalize(part) for part in expr.parts))
    if isinstance(expr, Alt):
        return alt(*(_normalize(part) for part in expr.parts))
    if isinstance(expr, Star):
        return star(_normalize(expr.child))
    if isinstance(expr, Repeat):
        child = _normalize(expr.child)
        required = [child] * expr.low
        if expr.high is None:
            return seq(*required, star(child))
        extra = expr.high - expr.low
        optional: Regex = EPSILON
        for _ in range(extra):
            optional = Repeat(child if optional is EPSILON
                              else Seq((child, optional)), 0, 1)
        # The nested Repeat(·,0,1) wrappers themselves still need lowering
        # into core form: (x)? == (x | ε) is not core either, so express
        # optionality via Alt with Epsilon.
        return seq(*required, _lower_opts(optional))
    raise TypeError(f"unknown regex node {expr!r}")


def _lower_opts(expr: Regex) -> Regex:
    """Replace ``Repeat(e,0,1)`` wrappers (built above) with ``Alt``."""
    if isinstance(expr, Repeat):
        assert (expr.low, expr.high) == (0, 1)
        inner = _lower_opts(expr.child)
        return alt(inner, EPSILON) if not inner.nullable() else inner
    if isinstance(expr, Seq):
        return seq(*(_lower_opts(part) for part in expr.parts))
    return expr
