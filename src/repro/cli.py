"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points so the system can be
driven without writing Python:

* ``validate DOC --xsd SCHEMA | --dtd SCHEMA [--root LABEL]`` —
  plain validation of a document against one schema;
* ``cast DOC... --source A --target B [--stats] [--no-string-cast]`` —
  schema cast validation (documents promised valid under A); each DOC
  may be a directory, validated as a batch (``--jobs N`` parallelizes
  it over a resident worker fleet, shared across all the directories of
  one invocation; ``--recursive`` walks nested corpora);
  ``--checkpoint PATH`` journals completed documents and ``--resume``
  restores them after an interrupt; ``--cache-dir DIR`` loads/saves
  the preprocessed pair artifact; ``--memo``/``--no-memo`` and
  ``--memo-size N`` control the subtree verdict memo (see
  ``docs/PERFORMANCE.md``); ``--profile-parse`` prints a
  parse/skip/validate/total wall-clock phase breakdown (streaming
  modes run the instrumented event pipeline so byte-level skim time
  gets its own line instead of being lumped into parse);
* ``repair DOC --source A --target B [-o OUT]`` — correct the document
  to conform to the target schema and report the edits;
* ``relations --source A --target B`` — print the precomputed
  ``R_sub`` / disjoint relations for a schema pair;
* ``gen-po N [-o OUT]`` — generate an N-item paper purchase order;
* ``serve [--demo | --pair NAME=SRC:TGT ...]`` — run the validation
  HTTP service (``POST /validate``, ``/cast``, ``/cast-with-mods``;
  ``GET /healthz``, ``/readyz``, ``/pairs``) with admission control,
  per-request deadlines, and graceful SIGTERM drain (see
  ``docs/ROBUSTNESS.md``).

Schema arguments ending in ``.dtd`` are parsed as DTDs, anything else
as XSD.  ``validate`` and ``cast`` accept resource-guard knobs —
``--max-depth``, ``--max-bytes``, ``--timeout`` (per-document seconds),
``--retries`` (transient-IO re-attempts) — that override the default
:class:`~repro.guards.Limits` for parsing, validation, and schema
compilation alike.  Exit status: 0 valid/success, 1 invalid, 2 usage,
schema, or resource-limit error.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.core.cast import CastValidator
from repro.core.memo import DEFAULT_MEMO_SIZE
from repro.core.repair import DocumentRepairer
from repro.core.validator import validate_document
from repro.errors import ReproError, error_code
from repro.guards import DEFAULT_LIMITS, Limits, limits_scope
from repro.schema.dtd import parse_dtd
from repro.schema.model import Schema
from repro.schema.registry import SchemaPair
from repro.schema.xsd import parse_xsd_file
from repro.xmltree.parser import parse_file
from repro.xmltree.serializer import write_file


def load_schema(path: str, *, roots: Optional[list[str]] = None) -> Schema:
    """Load a schema file, dispatching on the extension."""
    if path.endswith(".dtd"):
        with open(path, encoding="utf-8") as handle:
            return parse_dtd(handle.read(), roots=roots, name=path)
    return parse_xsd_file(path)


def _print_stats(stats) -> None:
    print(f"  nodes visited:          {stats.nodes_visited}")
    print(f"  subtrees skipped:       {stats.subtrees_skipped}")
    if stats.subtrees_byte_skipped:
        print(f"  byte-skipped subtrees:  {stats.subtrees_byte_skipped}")
        print(f"  bytes skipped:          {stats.bytes_skipped}")
    print(f"  disjoint rejections:    {stats.disjoint_rejections}")
    print(f"  content symbols read:   {stats.content_symbols_scanned}")
    print(f"  early content verdicts: {stats.early_content_decisions}")
    print(f"  simple values checked:  {stats.simple_values_checked}")
    if stats.memo_lookups > 0:
        print(f"  memo hits:              {stats.memo_hits}")
        print(f"  memo misses:            {stats.memo_misses}")
        print(f"  memo evictions:         {stats.memo_evictions}")
        print(f"  memo hit rate:          {stats.memo_hit_rate:.1%}")


def _guard_limits(args: argparse.Namespace) -> tuple[Optional[Limits], str]:
    """Validate every numeric knob and fold the guards into ``Limits``.

    Returns ``(limits, "")`` or ``(None, problem)`` — handlers print the
    problem to stderr and exit 2.  All knobs share one message shape
    (``--flag must be >= N, got V``) and one validation point, so a
    negative ``--retries`` on ``validate`` fails exactly like a
    negative ``--memo-size`` on ``cast``.
    """
    if getattr(args, "jobs", 1) < 1:
        return None, f"--jobs must be >= 1, got {args.jobs}"
    if args.max_depth is not None and args.max_depth < 1:
        return None, f"--max-depth must be >= 1, got {args.max_depth}"
    if args.max_bytes is not None and args.max_bytes < 1:
        return None, f"--max-bytes must be >= 1, got {args.max_bytes}"
    if args.timeout is not None and args.timeout <= 0:
        return None, f"--timeout must be > 0, got {args.timeout:g}"
    if args.retries < 0:
        return None, f"--retries must be >= 0, got {args.retries}"
    if getattr(args, "memo_size", 1) < 1:
        return None, f"--memo-size must be >= 1, got {args.memo_size}"
    chunk_size = getattr(args, "chunk_size", None)
    if chunk_size is not None and chunk_size < 1:
        return None, f"--chunk-size must be >= 1, got {chunk_size}"
    overrides: dict = {}
    if args.max_depth is not None:
        overrides["max_tree_depth"] = args.max_depth
    if args.max_bytes is not None:
        overrides["max_document_bytes"] = args.max_bytes
    if args.timeout is not None:
        overrides["deadline_seconds"] = args.timeout
    return DEFAULT_LIMITS.with_overrides(**overrides), ""


def _parse_with_retries(path: str, limits: Limits, retries: int,
                        symbols=None):
    """``parse_file`` with bounded retry of (possibly transient)
    ``OSError``; other failures propagate on the first attempt."""
    attempt = 0
    while True:
        attempt += 1
        try:
            return parse_file(path, limits=limits, symbols=symbols)
        except OSError:
            if attempt > retries:
                raise


def _print_phase_profile(stats) -> None:
    """The ``--profile-parse`` breakdown: where the wall-clock went.

    The skip line appears only when byte-level skims happened — skim
    time is attributed on its own so skip-heavy runs don't lump it
    into the parse phase.
    """
    parse = stats.parse_seconds
    validate = stats.validate_seconds
    skip = stats.skip_seconds
    total = parse + validate + skip
    print("phase profile:")
    if total > 0:
        print(f"  parse:    {parse:.4f}s ({parse / total:.1%})")
        if skip > 0:
            print(f"  skip:     {skip:.4f}s ({skip / total:.1%})")
        print(f"  validate: {validate:.4f}s ({validate / total:.1%})")
    else:
        print(f"  parse:    {parse:.4f}s")
        print(f"  validate: {validate:.4f}s")
    print(f"  total:    {total:.4f}s")


def cmd_validate(args: argparse.Namespace) -> int:
    limits, problem = _guard_limits(args)
    if limits is None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    with limits_scope(limits):
        schema = load_schema(args.schema, roots=args.root or None)
        if args.streaming:
            from repro.core.streaming import StreamingValidator

            report = StreamingValidator(
                schema, limits=limits
            ).validate_file(args.document)
        else:
            document = _parse_with_retries(args.document, limits,
                                           args.retries,
                                           symbols=schema.symbols)
            report = validate_document(schema, document, limits=limits)
    if report.valid:
        print(f"{args.document}: valid")
        if args.stats:
            _print_stats(report.stats)
        return 0
    print(f"{args.document}: INVALID — {report.reason}")
    return 1


def _load_pair(
    args: argparse.Namespace,
) -> tuple[SchemaPair, Optional[str]]:
    """Build (or fetch from the artifact cache) the schema pair.

    Returns ``(pair, artifact_file)``; the artifact file path (set only
    with ``--cache-dir``) lets the batch driver ship a path instead of
    a pickled pair to spawn-based worker pools.  With ``--chain`` the
    pair is the chain's single composed pair (its ``.chain`` attribute
    keeps the sequential fallback available).
    """
    chain_paths = getattr(args, "chain", None)
    if chain_paths:
        schemas = [load_schema(path) for path in chain_paths]
        cache_dir = getattr(args, "cache_dir", None)
        if cache_dir:
            from repro.schema.artifacts import (
                artifact_path,
                chain_cache_key,
                get_or_build_chain,
            )

            pair, from_cache = get_or_build_chain(schemas, cache_dir)
            origin = "cached artifact" if from_cache else "built and cached"
            print(f"chain: {origin} ({cache_dir})")
            return pair, artifact_path(cache_dir, chain_cache_key(schemas))
        from repro.schema.chain import SchemaChain

        return SchemaChain(schemas).composed_pair(), None
    source = load_schema(args.source)
    target = load_schema(args.target)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        from repro.schema.artifacts import (
            artifact_path,
            get_or_build,
            pair_cache_key,
        )

        pair, from_cache = get_or_build(source, target, cache_dir)
        origin = "cached artifact" if from_cache else "built and cached"
        print(f"pair: {origin} ({cache_dir})")
        return pair, artifact_path(cache_dir, pair_cache_key(source, target))
    return SchemaPair(source, target), None


def cmd_cast(args: argparse.Namespace) -> int:
    import os

    limits, problem = _guard_limits(args)
    if limits is None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    if args.chain:
        if args.source or args.target:
            print(
                "error: --chain replaces --source/--target",
                file=sys.stderr,
            )
            return 2
        if len(args.chain) < 2:
            print(
                "error: --chain needs at least two schema files",
                file=sys.stderr,
            )
            return 2
    elif not (args.source and args.target):
        print(
            "error: cast needs --source and --target (or --chain)",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH",
              file=sys.stderr)
        return 2
    if args.checkpoint and (
        len(args.document) != 1 or not os.path.isdir(args.document[0])
    ):
        print(
            "error: --checkpoint requires a single directory input",
            file=sys.stderr,
        )
        return 2
    memo_size = args.memo_size if args.memo else None
    exit_code = 0
    with limits_scope(limits):
        pair, artifact_file = _load_pair(args)
        fleet = None
        try:
            directories = [
                doc for doc in args.document if os.path.isdir(doc)
            ]
            if args.jobs > 1 and len(directories) > 1:
                # One resident fleet serves every directory of this
                # invocation: the pool and the transported pair are
                # paid for once, not once per directory.
                from repro.core.fleet import FleetConfig, WorkerFleet

                fleet = WorkerFleet(
                    pair,
                    args.jobs,
                    config=FleetConfig(
                        use_string_cast=not args.no_string_cast,
                        collect_stats=args.stats or args.profile_parse,
                        limits=limits,
                        retries=args.retries,
                        memo_size=memo_size,
                        stream_skip=args.stream_skip,
                    ),
                    artifact_path=artifact_file,
                    chunk_size=args.chunk_size,
                )
            for document in args.document:
                if os.path.isdir(document):
                    code = _cast_directory(
                        args, pair, document, limits, memo_size,
                        artifact_file, fleet,
                    )
                else:
                    code = _cast_single(
                        args, pair, document, limits, memo_size
                    )
                exit_code = max(exit_code, code)
        finally:
            if fleet is not None:
                fleet.close()
    return exit_code


def cmd_cast_with_mods(args: argparse.Namespace) -> int:
    import json

    limits, problem = _guard_limits(args)
    if limits is None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    from repro.core.updateprog import (
        Classification,
        UpdateProgram,
        cast_text_with_program,
        classify,
    )

    with limits_scope(limits):
        pair, _ = _load_pair(args)
        with open(args.program, encoding="utf-8") as handle:
            program = UpdateProgram.from_wire(json.load(handle))
        classification = classify(pair, program)
        print(
            f"program: {len(program.rules)} rule(s), "
            f"classified {classification.value} for "
            f"{pair.source.name or 'source'} -> "
            f"{pair.target.name or 'target'}"
        )
        if args.classify_only:
            return 0
        if (
            args.document is None
            and classification is Classification.INSTANCE_DEPENDENT
            and not args.require_safe
        ):
            print(
                "error: instance-dependent program needs a document",
                file=sys.stderr,
            )
            return 2
        text = None
        if args.document is not None:
            with open(args.document, encoding="utf-8") as handle:
                text = handle.read()
        report, classification = cast_text_with_program(
            pair,
            program,
            text,
            limits=limits,
            require_safe=args.require_safe,
        )
    subject = args.document or "<static>"
    if report.valid:
        traversal = (
            " (no document traversal)"
            if classification is not Classification.INSTANCE_DEPENDENT
            else ""
        )
        print(f"{subject}: valid{traversal}")
        return 0
    print(f"{subject}: INVALID — {report.reason}")
    return 1


def _cast_directory(
    args: argparse.Namespace,
    pair: SchemaPair,
    document: str,
    limits: Limits,
    memo_size: Optional[int],
    artifact_file: Optional[str],
    fleet,
) -> int:
    from repro.core.batch import validate_directory

    batch = validate_directory(
        pair,
        document,
        recursive=args.recursive,
        jobs=args.jobs,
        use_string_cast=not args.no_string_cast,
        collect_stats=args.stats or args.profile_parse,
        limits=limits,
        retries=args.retries,
        memo_size=memo_size,
        artifact_path=artifact_file,
        stream_skip=args.stream_skip,
        fleet=fleet,
        checkpoint=args.checkpoint,
        resume=args.resume,
        chunk_size=args.chunk_size,
    )
    chain = getattr(pair, "chain", None)
    for result in batch.invalid:
        detail = result.error or result.reason
        if result.error and result.error_code:
            detail = f"{detail} [{result.error_code}]"
        elif chain is not None and not result.error:
            # The batch ran the composed pair; re-derive the reject
            # reason hop-by-hop so it names the first failing schema.
            try:
                with open(result.path, encoding="utf-8") as handle:
                    sequential = chain.sequential_cast_text(
                        handle.read(), limits=limits
                    )
                if not sequential.valid:
                    detail = sequential.reason
            except OSError:
                pass
        print(f"{result.path}: INVALID — {detail}")
    print(
        f"{document}: {batch.valid_count}/{batch.total} valid "
        f"(jobs={args.jobs})"
    )
    if batch.resumed:
        print(
            f"checkpoint: {batch.resumed} of {batch.total} restored from "
            f"{args.checkpoint}, {batch.total - batch.resumed} validated "
            "this run"
        )
    if args.stats and batch.stats is not None:
        _print_stats(batch.stats)
    elif batch.stats is not None and batch.stats.memo_lookups > 0:
        print(
            f"memo: {batch.stats.memo_hits} hits / "
            f"{batch.stats.memo_lookups} lookups "
            f"({batch.stats.memo_hit_rate:.1%} across all workers)"
        )
    if args.profile_parse and batch.stats is not None:
        _print_phase_profile(batch.stats)
    return 0 if batch.all_valid else 1


def _cast_single(
    args: argparse.Namespace,
    pair: SchemaPair,
    document: str,
    limits: Limits,
    memo_size: Optional[int],
) -> int:
    chain = getattr(pair, "chain", None)
    if chain is not None:
        # One fused pass over the composed pair; accepts are
        # authoritative, rejects re-run hop-by-hop so the verdict and
        # message name the first schema in the chain that fails.
        if chain.statically_safe:
            print(
                "chain: statically safe "
                f"({len(chain.schemas) - 1} hops, 0 residual checks) — "
                "source-valid documents need no revalidation"
            )
        with open(document, encoding="utf-8") as handle:
            text = handle.read()
        report = chain.cast_text(
            text, limits=limits, stream_skip=args.stream_skip
        )
        verdict = (
            "valid" if report.valid else f"INVALID — {report.reason}"
        )
        print(f"{document}: {verdict}")
        return 0 if report.valid else 1
    if args.streaming or args.stream_skip:
        # The streaming validator never materializes subtrees, so
        # there is nothing to fingerprint — no memo here.
        from repro.core.streaming import StreamingCastValidator

        validator = StreamingCastValidator(pair, limits=limits)
        with open(document, encoding="utf-8") as handle:
            text = handle.read()
        if args.profile_parse:
            # Phase attribution needs the instrumented event pipeline;
            # the fused loop interleaves parse and validate in one
            # frame and cannot split them.  Verdicts are identical.
            print(
                "note: --profile-parse runs the instrumented event "
                "pipeline (slower than the fused kernel it profiles)",
                file=sys.stderr,
            )
            report = validator.profile_text(
                text, byte_skip=args.stream_skip
            )
        else:
            report = validator.validate_text(
                text, byte_skip=args.stream_skip
            )
    else:
        from repro.core.memo import ValidationMemo

        memo = (
            ValidationMemo(memo_size, limits=limits)
            if memo_size is not None
            else None
        )
        validator = CastValidator(
            pair, use_string_cast=not args.no_string_cast,
            limits=limits, memo=memo,
        )
        parse_start = time.perf_counter()
        tree = _parse_with_retries(document, limits, args.retries,
                                   symbols=pair.symbols)
        parse_end = time.perf_counter()
        report = validator.validate(tree)
        report.stats.parse_seconds += parse_end - parse_start
        report.stats.validate_seconds += (
            time.perf_counter() - parse_end
        )
    verdict = "valid" if report.valid else f"INVALID — {report.reason}"
    print(f"{document}: {verdict}")
    if args.stats:
        _print_stats(report.stats)
    if args.profile_parse:
        _print_phase_profile(report.stats)
    return 0 if report.valid else 1


def cmd_repair(args: argparse.Namespace) -> int:
    source = load_schema(args.source)
    target = load_schema(args.target)
    pair = SchemaPair(source, target)
    repairer = DocumentRepairer(pair, trust_source=not args.untrusted)
    document = parse_file(args.document)
    result = repairer.repair(document)
    if not result.changed:
        print(f"{args.document}: already valid, no repairs needed")
    else:
        print(f"{args.document}: {result.edit_count} repairs")
        for action in result.actions:
            print(f"  {action}")
    if args.output:
        size = write_file(result.document, args.output)
        print(f"wrote {args.output} ({size} bytes)")
    return 0


def cmd_relations(args: argparse.Namespace) -> int:
    pair, _ = _load_pair(args)
    source, target = pair.source, pair.target
    print(f"R_sub ({len(pair.r_sub)} pairs — skip these subtrees):")
    for tau, tau_p in sorted(pair.r_sub):
        print(f"  {tau} <= {tau_p}")
    disjoint = sorted(
        (tau, tau_p)
        for tau in source.types
        for tau_p in target.types
        if pair.is_disjoint(tau, tau_p)
    )
    print(f"R_dis ({len(disjoint)} pairs — fail immediately):")
    for tau, tau_p in disjoint:
        print(f"  {tau} (+) {tau_p}")
    return 0


def _parse_pair_flags(args: argparse.Namespace):
    """``--pair NAME=SRC:TGT`` / ``--chain NAME=S1:S2:...`` /
    ``--pair-timeout NAME=SECONDS`` → spec list; raises ``ValueError``
    with a usage message."""
    from repro.guards import Limits
    from repro.service.registry import ChainSpec, PairSpec

    timeouts: dict[str, float] = {}
    for flag in args.pair_timeout or []:
        name, _, value = flag.partition("=")
        if not name or not value:
            raise ValueError(
                f"--pair-timeout wants NAME=SECONDS, got {flag!r}"
            )
        try:
            seconds = float(value)
        except ValueError:
            raise ValueError(
                f"--pair-timeout {name}: unparseable seconds {value!r}"
            ) from None
        if seconds <= 0:
            raise ValueError(
                f"--pair-timeout {name}: seconds must be > 0, got {seconds:g}"
            )
        timeouts[name] = seconds

    def limits_for(name: str):
        if name in timeouts:
            return DEFAULT_LIMITS.with_overrides(
                deadline_seconds=timeouts.pop(name)
            )
        return None

    specs = []
    if args.demo:
        from repro.service.registry import demo_specs

        for spec in demo_specs():
            specs.append(
                PairSpec(spec.name, spec.source, spec.target,
                         limits=limits_for(spec.name))
            )
    for flag in args.pair or []:
        name, _, paths = flag.partition("=")
        source, _, target = paths.partition(":")
        if not name or not source or not target:
            raise ValueError(
                f"--pair wants NAME=SOURCE:TARGET, got {flag!r}"
            )
        specs.append(
            PairSpec(name, source, target, limits=limits_for(name))
        )
    if getattr(args, "demo_chain", False):
        from repro.service.registry import demo_chain_spec

        demo_chain = demo_chain_spec()
        specs.append(
            ChainSpec(
                demo_chain.name,
                demo_chain.schemas,
                limits=limits_for(demo_chain.name),
            )
        )
    for flag in getattr(args, "chain", None) or []:
        name, _, paths = flag.partition("=")
        schemas = tuple(p for p in paths.split(":") if p)
        if not name or len(schemas) < 2:
            raise ValueError(
                f"--chain wants NAME=S1:S2[:...], got {flag!r}"
            )
        specs.append(
            ChainSpec(name, schemas, limits=limits_for(name))
        )
    if timeouts:
        raise ValueError(
            "--pair-timeout names unregistered pairs: "
            + ", ".join(sorted(timeouts))
        )
    if not specs:
        raise ValueError(
            "serve needs --demo, --demo-chain, and/or at least one "
            "--pair/--chain"
        )
    return specs


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.registry import ServiceRegistry
    from repro.service.server import ServiceConfig, ValidationService

    try:
        specs = _parse_pair_flags(args)
        if args.processes < 1:
            raise ValueError(
                f"--processes must be >= 1, got {args.processes}"
            )
        if args.fleet_workers == 0 and (
            args.max_requests_per_worker is not None
            or args.max_worker_rss_mb is not None
        ):
            raise ValueError(
                "--max-requests-per-worker/--max-worker-rss-mb "
                "recycle fleet workers; set --fleet-workers >= 1"
            )
        config = ServiceConfig(
            max_concurrent=args.max_concurrent,
            max_queue=args.queue_depth,
            queue_timeout=args.queue_timeout,
            request_timeout=args.request_timeout,
            rate=args.rate,
            burst=args.burst,
            drain_grace=args.drain_grace,
            max_body_bytes=args.max_bytes,
            log_requests=args.log_requests,
            keep_alive=not args.no_keep_alive,
            max_requests_per_connection=args.max_requests_per_connection,
            fleet_workers=args.fleet_workers,
            max_requests_per_worker=args.max_requests_per_worker,
            max_worker_rss_mb=args.max_worker_rss_mb,
            admin=not args.no_admin,
            reload_journal=args.reload_journal,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.processes > 1:
        from repro.service.prefork import PreforkServer

        prefork = PreforkServer(
            specs,
            config,
            processes=args.processes,
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
        )
        try:
            host, port = prefork.start()
        except RuntimeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        prefork.install_signal_handlers()
        # Parsed by the CI smoke and the bench harness — keep the shape.
        print(f"listening on http://{host}:{port}", flush=True)
        print(
            f"ready: {len(specs)} pairs warmed in "
            f"{prefork.warm_seconds:.3f}s "
            f"across {args.processes} processes",
            flush=True,
        )
        return prefork.run_forever()

    registry = ServiceRegistry(
        specs,
        cache_dir=args.cache_dir,
        default_limits=DEFAULT_LIMITS,
    )
    service = ValidationService(registry, config)
    service.install_signal_handlers()
    host, port = service.start(args.host, args.port)
    # Parsed by the CI smoke and the bench harness — keep the shape.
    print(f"listening on http://{host}:{port}", flush=True)
    if not service.wait_ready(timeout=args.warm_timeout):
        detail = service.warm_error or "warm-up timed out"
        print(f"error: service failed to warm: {detail}", file=sys.stderr)
        service.close()
        return 2
    print(
        f"ready: {len(registry)} pairs warmed in "
        f"{registry.warm_seconds:.3f}s",
        flush=True,
    )
    return service.run_forever()


def cmd_gen_po(args: argparse.Namespace) -> int:
    from repro.workloads.purchase_orders import make_purchase_order

    document = make_purchase_order(args.items)
    if args.output:
        size = write_file(document, args.output)
        print(f"wrote {args.output} ({size} bytes, {args.items} items)")
    else:
        from repro.xmltree.serializer import serialize

        sys.stdout.write(serialize(document, indent="  "))
    return 0


def _add_guard_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="maximum element nesting depth (default: "
        f"{DEFAULT_LIMITS.max_tree_depth})",
    )
    command.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="maximum document size in bytes (default: "
        f"{DEFAULT_LIMITS.max_document_bytes})",
    )
    command.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-document wall-clock deadline in seconds "
        "(default: none)",
    )
    command.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts for documents failing with an IO error",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Schema cast validation of XML (EDBT 2004 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="validate a document against one schema"
    )
    validate.add_argument("document")
    validate.add_argument("--schema", required=True,
                          help=".xsd or .dtd file")
    validate.add_argument("--root", action="append",
                          help="permitted root label (DTD; repeatable)")
    validate.add_argument("--stats", action="store_true")
    validate.add_argument(
        "--streaming",
        action="store_true",
        help="validate during parsing with O(depth) memory",
    )
    _add_guard_options(validate)
    validate.set_defaults(handler=cmd_validate)

    cast = commands.add_parser(
        "cast",
        help="revalidate a source-valid document against a target schema",
    )
    cast.add_argument(
        "document",
        nargs="+",
        help="document files and/or directories; directories run in "
        "batch mode and share one worker fleet",
    )
    cast.add_argument("--source", help="source schema (with --target)")
    cast.add_argument("--target", help="target schema (with --source)")
    cast.add_argument(
        "--chain",
        nargs="+",
        metavar="SCHEMA",
        help="evolution chain S1 S2 ... Sn (two or more schema files): "
        "compose every hop into one pair and cast S1-valid documents "
        "against Sn in a single fused pass (replaces --source/--target)",
    )
    cast.add_argument("--stats", action="store_true")
    cast.add_argument(
        "--recursive",
        action="store_true",
        help="descend into subdirectories when a directory is given",
    )
    cast.add_argument(
        "--stream-skip",
        action="store_true",
        help="DOM-free cast with byte-level skipping: subsumed "
        "subtrees are never tokenized (implies streaming; for a "
        "directory, every batch worker uses this mode)",
    )
    cast.add_argument(
        "--streaming",
        action="store_true",
        help="cast during parsing with O(depth) memory",
    )
    cast.add_argument(
        "--profile-parse",
        action="store_true",
        help="print a parse/skip/validate/total wall-clock phase "
        "breakdown (streaming modes use the instrumented event "
        "pipeline: identical verdicts, slower than the fused kernel)",
    )
    cast.add_argument(
        "--no-string-cast",
        action="store_true",
        help="check content models with a plain target scan "
        "(the paper's modified-Xerces configuration)",
    )
    cast.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for directory (batch) mode",
    )
    cast.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="documents per work-stealing chunk (default: sized from "
        "the batch and worker count)",
    )
    cast.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="journal completed verdicts to PATH (single directory "
        "input only); combine with --resume to continue an "
        "interrupted run",
    )
    cast.add_argument(
        "--resume",
        action="store_true",
        help="restore verdicts from the --checkpoint journal and "
        "validate only documents not yet recorded (or changed since)",
    )
    cast.add_argument(
        "--cache-dir",
        help="directory for persisted schema-pair artifacts",
    )
    cast.add_argument(
        "--memo",
        dest="memo",
        action="store_true",
        default=True,
        help="memoize subtree verdicts by structural hash (default on)",
    )
    cast.add_argument(
        "--no-memo",
        dest="memo",
        action="store_false",
        help="disable the subtree verdict memo",
    )
    cast.add_argument(
        "--memo-size",
        type=int,
        default=DEFAULT_MEMO_SIZE,
        help="verdict memo capacity in entries (default: "
        f"{DEFAULT_MEMO_SIZE})",
    )
    _add_guard_options(cast)
    cast.set_defaults(handler=cmd_cast)

    castmods = commands.add_parser(
        "cast-with-mods",
        help="cast a document after applying a parametric update program",
    )
    castmods.add_argument(
        "document",
        nargs="?",
        help="document file; optional when the program classifies "
        "always-safe or never-safe (the verdict is static)",
    )
    castmods.add_argument("--source", required=True)
    castmods.add_argument("--target", required=True)
    castmods.add_argument(
        "--program",
        required=True,
        metavar="RULES.json",
        help="JSON file holding the rule list, e.g. "
        '[{"op": "delete", "label": "shipDate"}, '
        '{"op": "rename", "from": "comment", "to": "note"}, '
        '{"op": "insert", "label": "tag", "parent": "item", '
        '"position": "last"}]',
    )
    castmods.add_argument(
        "--require-safe",
        action="store_true",
        help="error out (exit 2) unless the program is statically "
        "always-safe for this pair — guarantees a zero-traversal cast",
    )
    castmods.add_argument(
        "--classify-only",
        action="store_true",
        help="print the static classification and exit without "
        "touching any document",
    )
    castmods.add_argument(
        "--cache-dir",
        help="directory for persisted schema-pair artifacts",
    )
    _add_guard_options(castmods)
    castmods.set_defaults(handler=cmd_cast_with_mods)

    repair = commands.add_parser(
        "repair", help="correct a document to conform to the target schema"
    )
    repair.add_argument("document")
    repair.add_argument("--source", required=True)
    repair.add_argument("--target", required=True)
    repair.add_argument("-o", "--output", help="write the repaired document")
    repair.add_argument(
        "--untrusted",
        action="store_true",
        help="do not assume the document is valid under the source schema",
    )
    repair.set_defaults(handler=cmd_repair)

    relations = commands.add_parser(
        "relations", help="print R_sub and R_dis for a schema pair"
    )
    relations.add_argument("--source", required=True)
    relations.add_argument("--target", required=True)
    relations.add_argument(
        "--cache-dir",
        help="directory for persisted schema-pair artifacts",
    )
    relations.set_defaults(handler=cmd_relations)

    gen = commands.add_parser(
        "gen-po", help="generate a paper-style purchase order document"
    )
    gen.add_argument("items", type=int)
    gen.add_argument("-o", "--output")
    gen.set_defaults(handler=cmd_gen_po)

    serve = commands.add_parser(
        "serve", help="run the validation HTTP service"
    )
    serve.add_argument(
        "--demo",
        action="store_true",
        help="register the paper's two purchase-order pairs",
    )
    serve.add_argument(
        "--pair",
        action="append",
        metavar="NAME=SOURCE:TARGET",
        help="register a schema pair from files (repeatable)",
    )
    serve.add_argument(
        "--chain",
        action="append",
        metavar="NAME=S1:S2:...",
        help="register an evolution chain of schema files as one "
        "composed pair answering POST /cast-chain (repeatable)",
    )
    serve.add_argument(
        "--demo-chain",
        action="store_true",
        help="register a three-hop purchase-order drift chain "
        "as 'po-chain'",
    )
    serve.add_argument(
        "--pair-timeout",
        action="append",
        metavar="NAME=SECONDS",
        help="per-pair request deadline override (repeatable)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8760,
        help="listen port (0 picks an ephemeral port, printed at boot)",
    )
    serve.add_argument(
        "--cache-dir",
        help="directory for persisted schema-pair artifacts "
        "(warm-up loads from here when possible)",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="requests validating concurrently",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="requests allowed to wait for a slot before shedding",
    )
    serve.add_argument(
        "--queue-timeout",
        type=float,
        default=1.0,
        help="longest a queued request waits before it is shed (seconds)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-request wall-clock budget from admission to response",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="per-client requests/second (default: no rate limit)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=10,
        help="per-client burst allowance when --rate is set",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds in-flight requests get to finish after SIGTERM",
    )
    serve.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="request-body byte bound, rejected from Content-Length "
        "before any read (default: the document byte limit)",
    )
    serve.add_argument(
        "--warm-timeout",
        type=float,
        default=120.0,
        help="seconds to wait for schema warm-up before giving up",
    )
    serve.add_argument(
        "--log-requests",
        action="store_true",
        help="log one line per request to stderr",
    )
    serve.add_argument(
        "--processes",
        type=int,
        default=1,
        help="pre-forked acceptor processes sharing the port via "
        "SO_REUSEPORT (each with its own admission slots)",
    )
    serve.add_argument(
        "--fleet-workers",
        type=int,
        default=0,
        help="resident validation worker processes per acceptor "
        "(0: validate inline in handler threads)",
    )
    serve.add_argument(
        "--no-keep-alive",
        action="store_true",
        help="close every connection after one response",
    )
    serve.add_argument(
        "--max-requests-per-connection",
        type=int,
        default=100,
        help="responses served on one kept-alive connection before "
        "it is closed",
    )
    serve.add_argument(
        "--max-requests-per-worker",
        type=int,
        default=None,
        help="recycle a fleet worker after this many requests "
        "(needs --fleet-workers)",
    )
    serve.add_argument(
        "--max-worker-rss-mb",
        type=float,
        default=None,
        help="recycle a fleet worker once its RSS exceeds this "
        "(needs --fleet-workers)",
    )
    serve.add_argument(
        "--no-admin",
        action="store_true",
        help="disable the /admin/pairs hot register/retire endpoints",
    )
    serve.add_argument(
        "--reload-journal",
        default=None,
        help="shared JSON-lines journal propagating hot pair "
        "register/retire across processes (multi-process serve "
        "creates one automatically)",
    )
    serve.set_defaults(handler=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        # Same diagnostic vocabulary as the HTTP service: the human
        # message plus the stable machine code in brackets.
        print(f"error: {error} [{error_code(error)}]", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
