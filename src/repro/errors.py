"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Parsing errors carry source positions;
schema errors carry the offending type or label where known.

Every class also carries a stable, machine-readable :attr:`ReproError.code`
(kebab-case, never renamed once released): the one diagnostic vocabulary
shared by the CLI, the batch driver's ``DocumentResult``, checkpoint
journals, and the HTTP service (:mod:`repro.service`).  ``to_dict()``
renders any error into that shared wire shape.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    Attributes:
        code: stable machine-readable identifier of the error class.
            Unlike the class name it is part of the wire contract —
            service responses, ``DocumentResult.error_code``, and
            checkpoint journals all carry it — so codes are append-only:
            a released code is never renamed or reused.
    """

    code = "repro-error"

    def to_dict(self) -> dict:
        """The shared diagnostic shape: ``code`` + ``message`` plus any
        position attributes the error carries (line/column for syntax
        errors, Dewey ``path`` for validation errors, ``position`` for
        content-model offsets).  Zero/empty positions are omitted."""
        data: dict = {"code": self.code, "message": str(self)}
        for attribute in ("line", "column", "path", "position", "symbol"):
            value = getattr(self, attribute, None)
            if value:
                data[attribute] = value
        return data


class XMLSyntaxError(ReproError):
    """Malformed XML input.

    Attributes:
        line: 1-based line of the offending construct.
        column: 1-based column of the offending construct.
    """

    code = "xml-syntax"

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class UnterminatedEntityError(XMLSyntaxError):
    """An entity reference without a terminating ``;`` — the ``&`` is
    followed by end-of-token, end-of-input, or another ``&`` before any
    semicolon.  The error position is the offending ``&`` itself; the
    lexer never silently scans past the token boundary looking for a
    terminator."""

    code = "xml-unterminated-entity"


class ContentModelSyntaxError(ReproError):
    """Malformed content-model expression (DTD `(a,(b|c)*)` syntax)."""

    code = "content-model-syntax"

    def __init__(self, message: str, position: int = -1):
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class AmbiguousContentModelError(ReproError):
    """Content model violates one-unambiguity (XSD Unique Particle
    Attribution).  Carries the symbol that two particles compete for."""

    code = "content-model-ambiguous"

    def __init__(self, message: str, symbol: str = ""):
        self.symbol = symbol
        super().__init__(message)


class SchemaError(ReproError):
    """Structurally invalid schema definition (dangling type reference,
    non-productive type where one is required, duplicate declaration...)."""

    code = "schema-invalid"


class DTDSyntaxError(SchemaError):
    """Malformed DTD source text."""

    code = "dtd-syntax"


class XSDSyntaxError(SchemaError):
    """Malformed or unsupported XML Schema source document."""

    code = "xsd-syntax"


class UnsupportedFeatureError(SchemaError):
    """A schema uses an XSD feature outside the supported subset (the
    paper's abstraction): wildcards, substitution groups, mixed content."""

    code = "schema-unsupported-feature"


class ValidationError(ReproError):
    """Raised by validators in ``raise_on_invalid`` mode; carries the Dewey
    path of the node at which validation failed."""

    code = "validation-failed"

    def __init__(self, message: str, path: str = ""):
        self.path = path
        if path:
            message = f"{message} (at {path})"
        super().__init__(message)


class UpdateError(ReproError):
    """Invalid tree/string update operation (bad target, deleted node...)."""

    code = "update-invalid"


class ChainMismatchError(ReproError):
    """An evolution chain is malformed: the pairs being composed do not
    share their junction schema, the chain is shorter than one hop, or a
    chain operation was requested against a plain (non-chain) pair."""

    code = "chain-mismatch"


class UnsafeUpdateProgramError(ReproError):
    """A parametric update program was required to be statically safe
    for a schema pair (``require_safe``) but classified as
    never-safe or instance-dependent, so the zero-traversal verdict
    shortcut cannot be taken."""

    code = "unsafe-update-program"

    def __init__(self, message: str, classification: str = ""):
        self.classification = classification
        super().__init__(message)


class BatchError(ReproError):
    """A batch run could not even start (missing or unreadable input
    directory).  Per-document failures never raise this; they are
    reported via ``DocumentResult.error``."""

    code = "batch-unstartable"


class ResourceLimitError(ReproError):
    """A configured resource limit was exceeded (see
    :class:`repro.guards.Limits`).

    Every guard in the pipeline — parser depth and size bounds, entity
    expansion counting, automaton state budgets, wall-clock deadlines —
    raises a subclass of this, so pathological input degrades into one
    catchable branch of the taxonomy instead of a hang,
    ``RecursionError``, or memory blowup.
    """

    code = "resource-limit"


class DocumentTooLargeError(ResourceLimitError):
    """Document byte size exceeds ``Limits.max_document_bytes``."""

    code = "doc-too-large"


class DocumentTooDeepError(ResourceLimitError):
    """Element nesting exceeds ``Limits.max_tree_depth``."""

    code = "doc-too-deep"


class EntityExpansionError(ResourceLimitError):
    """Entity/character-reference expansions exceed
    ``Limits.max_entity_expansions`` (billion-laughs defence)."""

    code = "entity-expansion"


class StateBudgetExceededError(ResourceLimitError, ValueError):
    """An automaton construction (subset construction, product, Glushkov
    position expansion) exceeds ``Limits.max_dfa_states``.

    Also a :class:`ValueError` for compatibility with the original
    ``normalize`` position-cap contract.
    """

    code = "state-budget-exceeded"


class DeadlineExceededError(ResourceLimitError):
    """Per-document wall-clock deadline (``Limits.deadline_seconds``)
    expired; raised by the amortized :class:`repro.guards.Deadline`."""

    code = "deadline-exceeded"


# -- code lookup -----------------------------------------------------------------

#: Codes for failure modes that are not ``ReproError`` classes but still
#: surface in ``DocumentResult``/service diagnostics: a worker process
#: dying mid-document, filesystem trouble, and the catch-all for bugs.
WORKER_CRASH_CODE = "worker-crash"
IO_ERROR_CODE = "io-error"
INTERNAL_CODE = "internal"


def error_code(error: BaseException) -> str:
    """The stable machine code for any exception instance.

    ``ReproError`` subclasses carry their own :attr:`~ReproError.code`;
    ``OSError`` collapses to :data:`IO_ERROR_CODE`; anything else (an
    unexpected bug) is :data:`INTERNAL_CODE` — so every failure path has
    *some* stable code and no caller ever emits a bare class name.
    """
    code = getattr(error, "code", None)
    if isinstance(code, str) and code:
        return code
    if isinstance(error, OSError):
        return IO_ERROR_CODE
    return INTERNAL_CODE


def _walk_taxonomy(cls: type) -> list[type]:
    found = [cls]
    for subclass in cls.__subclasses__():
        found.extend(_walk_taxonomy(subclass))
    return found


def code_for_error_type(type_name: str) -> str:
    """Map an exception class *name* back to its stable code.

    Used to heal records that predate ``error_code`` — checkpoint
    journal entries and ``DocumentResult``s that stored only the class
    name in ``error_type``.  Walks every currently imported
    ``ReproError`` subclass (so service-layer errors resolve too once
    :mod:`repro.service` is loaded); unknown names degrade to
    :data:`IO_ERROR_CODE`/:data:`INTERNAL_CODE`, never raise.
    """
    if not type_name:
        return ""
    if type_name == "WorkerCrash":
        return WORKER_CRASH_CODE
    for cls in _walk_taxonomy(ReproError):
        if cls.__name__ == type_name:
            return cls.code
    if type_name in (
        "OSError", "IOError", "FileNotFoundError", "PermissionError",
        "IsADirectoryError", "NotADirectoryError", "InterruptedError",
        "TimeoutError", "BlockingIOError", "ConnectionError",
    ):
        return IO_ERROR_CODE
    return INTERNAL_CODE
