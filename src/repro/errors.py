"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Parsing errors carry source positions;
schema errors carry the offending type or label where known.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XMLSyntaxError(ReproError):
    """Malformed XML input.

    Attributes:
        line: 1-based line of the offending construct.
        column: 1-based column of the offending construct.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class UnterminatedEntityError(XMLSyntaxError):
    """An entity reference without a terminating ``;`` — the ``&`` is
    followed by end-of-token, end-of-input, or another ``&`` before any
    semicolon.  The error position is the offending ``&`` itself; the
    lexer never silently scans past the token boundary looking for a
    terminator."""


class ContentModelSyntaxError(ReproError):
    """Malformed content-model expression (DTD `(a,(b|c)*)` syntax)."""

    def __init__(self, message: str, position: int = -1):
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class AmbiguousContentModelError(ReproError):
    """Content model violates one-unambiguity (XSD Unique Particle
    Attribution).  Carries the symbol that two particles compete for."""

    def __init__(self, message: str, symbol: str = ""):
        self.symbol = symbol
        super().__init__(message)


class SchemaError(ReproError):
    """Structurally invalid schema definition (dangling type reference,
    non-productive type where one is required, duplicate declaration...)."""


class DTDSyntaxError(SchemaError):
    """Malformed DTD source text."""


class XSDSyntaxError(SchemaError):
    """Malformed or unsupported XML Schema source document."""


class UnsupportedFeatureError(SchemaError):
    """A schema uses an XSD feature outside the supported subset (the
    paper's abstraction): wildcards, substitution groups, mixed content."""


class ValidationError(ReproError):
    """Raised by validators in ``raise_on_invalid`` mode; carries the Dewey
    path of the node at which validation failed."""

    def __init__(self, message: str, path: str = ""):
        self.path = path
        if path:
            message = f"{message} (at {path})"
        super().__init__(message)


class UpdateError(ReproError):
    """Invalid tree/string update operation (bad target, deleted node...)."""


class BatchError(ReproError):
    """A batch run could not even start (missing or unreadable input
    directory).  Per-document failures never raise this; they are
    reported via ``DocumentResult.error``."""


class ResourceLimitError(ReproError):
    """A configured resource limit was exceeded (see
    :class:`repro.guards.Limits`).

    Every guard in the pipeline — parser depth and size bounds, entity
    expansion counting, automaton state budgets, wall-clock deadlines —
    raises a subclass of this, so pathological input degrades into one
    catchable branch of the taxonomy instead of a hang,
    ``RecursionError``, or memory blowup.
    """


class DocumentTooLargeError(ResourceLimitError):
    """Document byte size exceeds ``Limits.max_document_bytes``."""


class DocumentTooDeepError(ResourceLimitError):
    """Element nesting exceeds ``Limits.max_tree_depth``."""


class EntityExpansionError(ResourceLimitError):
    """Entity/character-reference expansions exceed
    ``Limits.max_entity_expansions`` (billion-laughs defence)."""


class StateBudgetExceededError(ResourceLimitError, ValueError):
    """An automaton construction (subset construction, product, Glushkov
    position expansion) exceeds ``Limits.max_dfa_states``.

    Also a :class:`ValueError` for compatibility with the original
    ``normalize`` position-cap contract.
    """


class DeadlineExceededError(ResourceLimitError):
    """Per-document wall-clock deadline (``Limits.deadline_seconds``)
    expired; raised by the amortized :class:`repro.guards.Deadline`."""
