"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Parsing errors carry source positions;
schema errors carry the offending type or label where known.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XMLSyntaxError(ReproError):
    """Malformed XML input.

    Attributes:
        line: 1-based line of the offending construct.
        column: 1-based column of the offending construct.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ContentModelSyntaxError(ReproError):
    """Malformed content-model expression (DTD `(a,(b|c)*)` syntax)."""

    def __init__(self, message: str, position: int = -1):
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class AmbiguousContentModelError(ReproError):
    """Content model violates one-unambiguity (XSD Unique Particle
    Attribution).  Carries the symbol that two particles compete for."""

    def __init__(self, message: str, symbol: str = ""):
        self.symbol = symbol
        super().__init__(message)


class SchemaError(ReproError):
    """Structurally invalid schema definition (dangling type reference,
    non-productive type where one is required, duplicate declaration...)."""


class DTDSyntaxError(SchemaError):
    """Malformed DTD source text."""


class XSDSyntaxError(SchemaError):
    """Malformed or unsupported XML Schema source document."""


class UnsupportedFeatureError(SchemaError):
    """A schema uses an XSD feature outside the supported subset (the
    paper's abstraction): wildcards, substitution groups, mixed content."""


class ValidationError(ReproError):
    """Raised by validators in ``raise_on_invalid`` mode; carries the Dewey
    path of the node at which validation failed."""

    def __init__(self, message: str, path: str = ""):
        self.path = path
        if path:
            message = f"{message} (at {path})"
        super().__init__(message)


class UpdateError(ReproError):
    """Invalid tree/string update operation (bad target, deleted node...)."""
