"""Comparison baselines: Xerces-style full validation and a
document-preprocessing incremental validator (related-work family)."""

from repro.baselines.full import FullValidator
from repro.baselines.preprocessed import PreprocessedIncrementalValidator

__all__ = ["FullValidator", "PreprocessedIncrementalValidator"]
