"""Document-preprocessing incremental validator (related-work baseline).

The incremental-validation line of work the paper contrasts itself with
(Papakonstantinou–Vianu [17], Barbosa et al. [3]) *preprocesses the
document*: validation state is attached to every tree node so that later
updates can be rechecked locally.  The trade-off the paper highlights is
memory proportional to the document (and preprocessing time on first
contact), against the schema-cast approach whose state depends only on
the schemas.

:class:`PreprocessedIncrementalValidator` is a faithful, simplified
representative of that family for the *single-schema* update problem:

* :meth:`preprocess` annotates every element with its assigned type
  (types are unique per position in our schema model, so this is the
  analogue of storing the validation computation);
* update operations recheck only the affected parent's content model
  and the updated node, using the stored type annotations;
* :meth:`memory_cells` exposes the annotation-store size, which the A5
  ablation benchmark reports against document size.

It only supports revalidation against the *same* schema — exactly the
limitation the paper points out in related work.
"""

from __future__ import annotations

from typing import Optional

from repro.core.result import ValidationReport, ValidationStats
from repro.core.validator import validate_document
from repro.errors import UpdateError
from repro.schema.model import ComplexType, Schema, SimpleType
from repro.xmltree.dom import Document, Element, Text


class PreprocessedIncrementalValidator:
    """Single-schema incremental validator with per-node annotations."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._types: dict[int, str] = {}
        self._pinned: dict[int, Element] = {}
        self.document: Optional[Document] = None

    # -- preprocessing -----------------------------------------------------

    def preprocess(self, document: Document) -> ValidationReport:
        """Validate fully and annotate every element with its type.

        Must be called before any update; the annotations are the
        document-proportional state the paper's approach avoids.
        """
        report = validate_document(self.schema, document)
        if not report.valid:
            return report
        self.document = document
        self._types.clear()
        self._pinned.clear()
        root_type = self.schema.root_type(document.root.label)
        assert root_type is not None
        self._annotate(document.root, root_type)
        return report

    def _annotate(self, element: Element, type_name: str) -> None:
        self._types[id(element)] = type_name
        self._pinned[id(element)] = element
        declaration = self.schema.type(type_name)
        if not isinstance(declaration, ComplexType):
            return
        for child in element.children:
            if isinstance(child, Element):
                self._annotate(child, declaration.child_types[child.label])

    def memory_cells(self) -> int:
        """Number of per-node annotation entries held (≈ document size)."""
        return len(self._types)

    # -- incremental updates -------------------------------------------------

    def rename(self, element: Element, new_label: str) -> ValidationReport:
        """Relabel an element and recheck the affected neighbourhood."""
        self._require_ready(element)
        element.label = new_label
        report = self._recheck_parent(element)
        if not report.valid:
            return report
        # The node's type may have changed with its label; revalidate the
        # subtree under the newly assigned type and refresh annotations.
        new_type = self._assigned_type(element)
        if new_type is None:
            return ValidationReport.failure(
                f"label {new_label!r} has no type here",
                path=str(element.dewey()),
            )
        from repro.core.validator import validate_element

        subtree = validate_element(self.schema, new_type, element)
        if subtree.valid:
            self._annotate(element, new_type)
        return subtree

    def insert_element(
        self, parent: Element, position: int, label: str
    ) -> ValidationReport:
        self._require_ready(parent)
        node = Element(label)
        parent.insert(position, node)
        report = self._recheck_parent_of(parent, node)
        if not report.valid:
            return report
        new_type = self._assigned_type(node)
        assert new_type is not None  # parent content check passed
        from repro.core.validator import validate_element

        subtree = validate_element(self.schema, new_type, node)
        if subtree.valid:
            self._annotate(node, new_type)
        return subtree

    def delete(self, node: Element | Text) -> ValidationReport:
        self._require_ready(node)
        if isinstance(node, Element) and node.children:
            raise UpdateError("only leaf nodes may be deleted")
        parent = node.parent
        if parent is None:
            raise UpdateError("cannot delete the root")
        parent.remove(node)
        self._types.pop(id(node), None)
        self._pinned.pop(id(node), None)
        return self._recheck(parent)

    # -- internals ------------------------------------------------------------

    def _require_ready(self, node) -> None:
        if self.document is None:
            raise UpdateError("preprocess() a document first")

    def _assigned_type(self, element: Element) -> Optional[str]:
        parent = element.parent
        if parent is None:
            return self.schema.root_type(element.label)
        parent_type = self._types.get(id(parent))
        if parent_type is None:
            return None
        declaration = self.schema.type(parent_type)
        if isinstance(declaration, ComplexType):
            return declaration.child_types.get(element.label)
        return None

    def _recheck_parent(self, element: Element) -> ValidationReport:
        parent = element.parent
        if parent is None:
            if self.schema.root_type(element.label) is None:
                return ValidationReport.failure(
                    f"label {element.label!r} is not a permitted root"
                )
            return ValidationReport.success()
        return self._recheck(parent)

    def _recheck_parent_of(
        self, parent: Element, _child
    ) -> ValidationReport:
        return self._recheck(parent)

    def _recheck(self, element: Element) -> ValidationReport:
        """Recheck one element's immediate content model using its stored
        type annotation — the local work incremental validation does."""
        stats = ValidationStats()
        type_name = self._types.get(id(element))
        if type_name is None:
            return ValidationReport.failure(
                "no annotation for the updated node's parent",
                path=str(element.dewey()),
            )
        declaration = self.schema.type(type_name)
        stats.elements_visited += 1
        if isinstance(declaration, SimpleType):
            stats.simple_values_checked += 1
            if not declaration.validate(element.text()):
                return ValidationReport.failure(
                    "text no longer conforms",
                    path=str(element.dewey()),
                    stats=stats,
                )
            return ValidationReport.success(stats)
        dfa = self.schema.content_dfa(type_name)
        state = dfa.start
        for child in element.children:
            if isinstance(child, Text):
                if child.value.strip() == "":
                    continue
                return ValidationReport.failure(
                    "character data in element content",
                    path=str(element.dewey()),
                    stats=stats,
                )
            if child.label not in dfa.alphabet:
                return ValidationReport.failure(
                    f"unexpected element {child.label!r}",
                    path=str(child.dewey()),
                    stats=stats,
                )
            state = dfa.transitions[state][child.label]
            stats.content_symbols_scanned += 1
        if state not in dfa.finals:
            return ValidationReport.failure(
                "content model violated after update",
                path=str(element.dewey()),
                stats=stats,
            )
        return ValidationReport.success(stats)
