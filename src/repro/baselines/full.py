"""Full-traversal validation baseline — the "unmodified Xerces" stand-in.

The paper's experiments compare the schema cast validator against an
unmodified Xerces 2.4, which validates every node of the DOM tree with
precompiled content-model automata.  :class:`FullValidator` plays that
role here: it compiles every content model up front and then runs the
plain top-down validation of :mod:`repro.core.validator` over the whole
document, sharing the instrumentation counters so node-visit comparisons
(Table 3) are apples-to-apples.
"""

from __future__ import annotations

from repro.core.result import ValidationReport
from repro.core.validator import validate_document
from repro.schema.model import ComplexType, Schema
from repro.xmltree.dom import Document


class FullValidator:
    """Validates documents against one schema by full traversal.

    ``collect_stats=False`` switches to the compiled dense-table fast
    path of :func:`repro.core.validator.validate_document` — same
    verdicts, no Table-3 counters.
    """

    def __init__(self, schema: Schema, *, collect_stats: bool = True):
        self.schema = schema
        self.collect_stats = collect_stats
        # Precompile every content model, as a production validator
        # (Xerces) does when the grammar is loaded.
        for type_name, declaration in schema.types.items():
            if isinstance(declaration, ComplexType):
                schema.content_dfa(type_name)
                if not collect_stats:
                    schema.compiled_content_dfa(type_name)

    def validate(self, document: Document) -> ValidationReport:
        return validate_document(
            self.schema, document, collect_stats=self.collect_stats
        )
