"""Service-level branches of the ``ReproError`` taxonomy.

Admission rejections, malformed requests, and routing failures are
errors of the *service* contract, not the validation pipeline, but they
live in the same taxonomy so one ``except ReproError`` (and one
``to_dict()`` wire shape, one stable-code vocabulary) covers the whole
front door.  :func:`repro.service.diagnostics.http_status` maps each
class to its HTTP status.
"""

from __future__ import annotations

from repro.errors import ReproError


class ServiceError(ReproError):
    """Base class for request-level service failures."""

    code = "service-error"


class MalformedRequestError(ServiceError):
    """The request envelope is unusable: not JSON, missing required
    fields, wrong field types, or an unparseable modification list.
    Maps to ``400``."""

    code = "bad-request"


class TruncatedBodyError(MalformedRequestError):
    """The client promised ``Content-Length`` bytes but the connection
    ended early.  Maps to ``400``."""

    code = "truncated-body"


class LengthRequiredError(ServiceError):
    """``POST`` without a ``Content-Length`` header — the service never
    reads unbounded bodies.  Maps to ``411``."""

    code = "length-required"


class UnknownRouteError(ServiceError):
    """No endpoint at this path.  Maps to ``404``."""

    code = "unknown-route"


class UnknownPairError(ServiceError):
    """The request names a schema pair the registry does not hold
    (neither by name nor by content fingerprint).  Maps to ``404``."""

    code = "unknown-pair"


class PairConflictError(ServiceError):
    """Hot registration collided with a pair already registered under
    the same name but with different schema content (or the same
    content under another name).  Maps to ``409``."""

    code = "pair-conflict"


class MethodNotAllowedError(ServiceError):
    """Endpoint exists but not for this HTTP method.  Maps to ``405``."""

    code = "method-not-allowed"


class RequestTimeoutError(ServiceError):
    """The client fed the request body slower than the per-request
    deadline allows (slow-loris defence).  Maps to ``408``."""

    code = "request-timeout"


class RateLimitedError(ServiceError):
    """This client exceeded its request-rate budget.  Maps to ``429``
    with a ``Retry-After`` hint."""

    code = "rate-limited"

    def __init__(self, message: str, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message)


class OverloadedError(ServiceError):
    """Admission control shed this request: every worker slot is busy
    and the wait queue is full (or the queued request outwaited its
    budget).  Maps to ``503`` with a ``Retry-After`` hint."""

    code = "overloaded"

    def __init__(self, message: str, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message)


class DrainingError(OverloadedError):
    """The service received SIGTERM and is draining: in-flight requests
    finish, new ones are refused.  Maps to ``503``."""

    code = "draining"


class NotReadyError(ServiceError):
    """Warm-up (schema compilation, artifact loading) has not finished;
    ``readyz`` gates traffic until it has.  Maps to ``503``."""

    code = "not-ready"
