"""Admission control: bounded concurrency, bounded queueing, shedding.

A threaded HTTP server without admission control has an unbounded
implicit queue — every accepted connection spawns a thread that runs a
validator, and at 2× capacity latency grows without bound until memory
or the client gives up.  :class:`AdmissionController` makes the queue
explicit and *bounded*, which turns overload into a fast, typed answer:

* at most ``max_concurrent`` requests hold a work slot at once;
* at most ``max_queue`` more wait for a slot, and no waiter waits
  longer than ``queue_timeout`` — queueing burns the request's own
  deadline, so a queued request that would miss its budget anyway is
  shed early rather than served late;
* everything beyond that is refused immediately with
  :class:`~repro.service.errors.OverloadedError` (→ ``503`` +
  ``Retry-After``);
* an optional per-client token bucket (``rate``/``burst``) answers
  individual abusers with
  :class:`~repro.service.errors.RateLimitedError` (→ ``429``) before
  they can occupy a slot;
* :meth:`AdmissionController.start_drain` flips the controller into
  drain mode — waiters and new arrivals get
  :class:`~repro.service.errors.DrainingError`, in-flight requests
  finish, and :meth:`await_idle` tells the server when the last one
  has — the heart of SIGTERM graceful shutdown.

The controller is deliberately server-agnostic (no sockets, no HTTP):
it is unit-testable with plain threads, and the load-test harness
exercises it through the real server.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.service.errors import (
    DrainingError,
    OverloadedError,
    RateLimitedError,
)

__all__ = ["AdmissionController", "AdmissionStats", "TokenBucket"]


@dataclass
class AdmissionStats:
    """Monotonic counters, exposed verbatim by ``GET /healthz``."""

    admitted: int = 0
    completed: int = 0
    queued: int = 0
    shed_queue_full: int = 0
    shed_queue_timeout: int = 0
    shed_draining: int = 0
    rate_limited: int = 0
    peak_inflight: int = 0

    @property
    def shed(self) -> int:
        return (
            self.shed_queue_full
            + self.shed_queue_timeout
            + self.shed_draining
        )

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "queued": self.queued,
            "shed": self.shed,
            "shed_queue_full": self.shed_queue_full,
            "shed_queue_timeout": self.shed_queue_timeout,
            "shed_draining": self.shed_draining,
            "rate_limited": self.rate_limited,
            "peak_inflight": self.peak_inflight,
        }


class TokenBucket:
    """Per-client token buckets: ``rate`` refills/second, ``burst``
    capacity.  Buckets are pruned lazily so one scanning client cannot
    grow the table without bound."""

    #: Above this many tracked clients, full buckets are evicted.
    MAX_CLIENTS = 4096

    def __init__(self, rate: float, burst: int):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._buckets: dict[str, tuple[float, float]] = {}
        self._lock = threading.Lock()

    def allow(self, client: str, now: Optional[float] = None) -> bool:
        """Consume one token for ``client``; ``False`` means 429."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            tokens, stamp = self._buckets.get(client, (float(self.burst), now))
            tokens = min(float(self.burst), tokens + (now - stamp) * self.rate)
            allowed = tokens >= 1.0
            if allowed:
                tokens -= 1.0
            self._buckets[client] = (tokens, now)
            if len(self._buckets) > self.MAX_CLIENTS:
                self._prune(now)
            return allowed

    def _prune(self, now: float) -> None:
        # A client whose bucket has refilled to capacity carries no
        # state worth keeping — dropping it recreates it full.
        refill = self.burst / self.rate
        self._buckets = {
            client: entry
            for client, entry in self._buckets.items()
            if now - entry[1] < refill
        }

    def retry_after(self) -> float:
        """Seconds until one token refills — the 429 ``Retry-After``."""
        return max(1.0 / self.rate, 0.001)


class AdmissionController:
    """The bounded front door; see the module docstring for semantics."""

    def __init__(
        self,
        *,
        max_concurrent: int = 8,
        max_queue: int = 16,
        queue_timeout: float = 1.0,
        rate: Optional[float] = None,
        burst: int = 10,
    ):
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if queue_timeout <= 0:
            raise ValueError(
                f"queue_timeout must be > 0, got {queue_timeout}"
            )
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self.stats = AdmissionStats()
        self._bucket = (
            TokenBucket(rate, burst) if rate is not None else None
        )
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._draining = False

    # -- introspection -------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Requests currently holding a work slot."""
        with self._cond:
            return self._active

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def retry_after(self) -> float:
        """The ``Retry-After`` hint for a shed request: roughly one
        queue drain away."""
        return max(self.queue_timeout, 0.1)

    # -- the slot protocol ---------------------------------------------------

    def acquire(self, client: str = "") -> None:
        """Take a work slot, waiting in the bounded queue if needed.

        Raises :class:`DrainingError`, :class:`RateLimitedError`, or
        :class:`OverloadedError`; on normal return the caller *must*
        eventually call :meth:`release` (use :meth:`slot`).
        """
        if self._bucket is not None and not self._bucket.allow(client):
            with self._cond:
                self.stats.rate_limited += 1
            raise RateLimitedError(
                f"client {client or 'unknown'} exceeded its request rate",
                retry_after=self._bucket.retry_after(),
            )
        with self._cond:
            if self._draining:
                self.stats.shed_draining += 1
                raise DrainingError(
                    "service is draining", retry_after=self.retry_after()
                )
            if self._active < self.max_concurrent:
                self._admit()
                return
            if self._waiting >= self.max_queue:
                self.stats.shed_queue_full += 1
                raise OverloadedError(
                    f"admission queue full "
                    f"({self._active} active, {self._waiting} queued)",
                    retry_after=self.retry_after(),
                )
            self.stats.queued += 1
            self._waiting += 1
            deadline = time.monotonic() + self.queue_timeout
            try:
                while True:
                    if self._draining:
                        self.stats.shed_draining += 1
                        raise DrainingError(
                            "service is draining",
                            retry_after=self.retry_after(),
                        )
                    if self._active < self.max_concurrent:
                        self._admit()
                        return
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.stats.shed_queue_timeout += 1
                        raise OverloadedError(
                            "request outwaited the admission queue "
                            f"budget of {self.queue_timeout:g}s",
                            retry_after=self.retry_after(),
                        )
                    self._cond.wait(remaining)
            finally:
                self._waiting -= 1

    def _admit(self) -> None:
        # Caller holds the condition lock.
        self._active += 1
        self.stats.admitted += 1
        if self._active > self.stats.peak_inflight:
            self.stats.peak_inflight = self._active

    def release(self) -> None:
        with self._cond:
            if self._active <= 0:
                raise RuntimeError("release() without a held slot")
            self._active -= 1
            self.stats.completed += 1
            self._cond.notify_all()

    @contextlib.contextmanager
    def slot(self, client: str = "") -> Iterator[None]:
        """``with admission.slot(ip):`` — acquire + guaranteed release."""
        self.acquire(client)
        try:
            yield
        finally:
            self.release()

    # -- drain ---------------------------------------------------------------

    def start_drain(self) -> None:
        """Refuse new work; wake every queued waiter so it sheds now.
        Idempotent and safe from any thread (including signal-handler
        spawned ones)."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def await_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no request holds a slot; ``False`` on timeout."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._cond:
            while self._active > 0:
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True
