"""Request execution shared by handler threads and fleet workers.

The service has two execution paths for a validation request: inline
(the handler thread runs the validator under the GIL) and dispatched
(the request is shipped to a resident worker process of the
:class:`~repro.service.executor.FleetExecutor`, so casts from many
connections run truly in parallel).  Both paths must produce *exactly*
the same payloads, diagnostics, and typed errors — so the work itself
lives here, imported by both sides, and the transport layers carry only
plain JSON-able dicts.

``perform_request`` is the whole data plane: resolve the requested
schema (validate/cast/cast-with-mods), run it under the pair's
``Limits`` tightened to the *residual* request deadline, and return the
wire payload.  ``spec_from_wire`` is the control-plane counterpart: it
turns a ``POST /admin/pairs`` body (schema file paths or inline schema
text) into a :class:`~repro.service.registry.PairSpec` for hot
registration.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.castmods import CastWithModificationsValidator
from repro.core.cast import cast_text
from repro.core.updates import UpdateSession
from repro.core.validator import validate_document
from repro.dewey import Dewey
from repro.errors import ChainMismatchError, DeadlineExceededError
from repro.guards import Limits, limits_scope
from repro.schema.registry import SchemaPair
from repro.service.diagnostics import report_payload
from repro.service.errors import MalformedRequestError
from repro.xmltree.dom import Element, Text
from repro.xmltree.parser import parse

__all__ = [
    "VALIDATION_KINDS",
    "perform_request",
    "residual_limits",
    "spec_from_wire",
]

#: Route suffix → job kind; the vocabulary both execution paths share.
VALIDATION_KINDS = ("validate", "cast", "cast-with-mods", "cast-chain")


def require_str(request: dict, field: str) -> str:
    value = request.get(field)
    if not isinstance(value, str) or not value:
        raise MalformedRequestError(
            f"request field {field!r} must be a non-empty string"
        )
    return value


def residual_limits(limits: Limits, residual: float,
                    budget: float) -> Limits:
    """``limits`` with ``deadline_seconds`` set to what is *left* of
    the request budget — admission wait and body read have already
    spent their share; validation gets the rest, and the pair's own
    cap can only tighten it further."""
    if residual <= 0:
        raise DeadlineExceededError(
            f"request deadline of {budget:g}s exhausted "
            "before validation began"
        )
    cap = limits.deadline_seconds
    cap = residual if cap is None else min(cap, residual)
    return limits.with_overrides(deadline_seconds=cap)


def _resolve_node(document, path_text: str):
    """The node at a Dewey path (``""`` = root, steps index *all*
    children, text nodes included — the numbering ``Node.dewey()``
    reports)."""
    if not isinstance(path_text, str):
        raise MalformedRequestError("mod field 'path' must be a string")
    try:
        steps = Dewey.parse(path_text).path
    except ValueError as error:
        raise MalformedRequestError(str(error)) from None
    node = document.root
    for step in steps:
        children = getattr(node, "children", None)
        if children is None or step >= len(children):
            raise MalformedRequestError(
                f"Dewey path {path_text!r} does not address a node"
            )
        node = children[step]
    return node


def apply_mods(session: UpdateSession, mods) -> None:
    """Replay a wire-encoded modification list into the session.

    Each mod is ``{"op": ..., "path": <Dewey>, ...}``; ops mirror the
    paper's update operations (§3.3).  A structurally bad mod is a 400;
    a semantically bad one (deleted target, bad position) surfaces as
    ``UpdateError`` — also a 400 — so no mod list can crash the server.
    """
    if not isinstance(mods, list):
        raise MalformedRequestError("'mods' must be a list of operations")
    for index, mod in enumerate(mods):
        if not isinstance(mod, dict) or not isinstance(mod.get("op"), str):
            raise MalformedRequestError(
                f"mods[{index}] must be an object with an 'op' string"
            )
        op = mod["op"]
        try:
            _apply_one_mod(session, mod)
        except (KeyError, TypeError) as error:
            raise MalformedRequestError(
                f"mods[{index}] ({op}): missing or mistyped field "
                f"({error})"
            ) from None
        except MalformedRequestError as error:
            raise MalformedRequestError(
                f"mods[{index}] ({op}): {error}"
            ) from None


def _apply_one_mod(session: UpdateSession, mod: dict) -> None:
    op = mod["op"]
    document = session.document
    if op == "rename":
        node = _resolve_node(document, mod["path"])
        if not isinstance(node, Element):
            raise MalformedRequestError("rename targets an element")
        session.rename(node, str(mod["label"]))
    elif op == "replace-text":
        node = _resolve_node(document, mod["path"])
        if not isinstance(node, Text):
            raise MalformedRequestError("replace-text targets a text node")
        session.replace_text(node, str(mod["value"]))
    elif op == "set-attribute":
        node = _resolve_node(document, mod["path"])
        if not isinstance(node, Element):
            raise MalformedRequestError("set-attribute targets an element")
        session.set_attribute(node, str(mod["name"]), str(mod["value"]))
    elif op == "remove-attribute":
        node = _resolve_node(document, mod["path"])
        if not isinstance(node, Element):
            raise MalformedRequestError(
                "remove-attribute targets an element"
            )
        session.remove_attribute(node, str(mod["name"]))
    elif op == "delete":
        node = _resolve_node(document, mod["path"])
        session.delete(node)
    elif op == "insert-element":
        parent = _resolve_node(document, mod["path"])
        if not isinstance(parent, Element):
            raise MalformedRequestError(
                "insert-element's path addresses the parent element"
            )
        session.insert_element(
            parent, int(mod["position"]), str(mod["label"])
        )
    elif op == "insert-text":
        parent = _resolve_node(document, mod["path"])
        if not isinstance(parent, Element):
            raise MalformedRequestError(
                "insert-text's path addresses the parent element"
            )
        session.insert_text(parent, int(mod["position"]), str(mod["value"]))
    else:
        raise MalformedRequestError(f"unknown op {op!r}")


def perform_request(
    kind: str,
    pair: SchemaPair,
    request: dict,
    limits: Limits,
    *,
    pair_name: str = "",
    fingerprint: str = "",
) -> dict:
    """Execute one validation request; returns the 200 payload.

    ``limits`` must already carry the residual request deadline (see
    :func:`residual_limits`).  Raises ``ReproError`` on any typed
    failure — the caller maps it to an HTTP status.
    """
    xml = require_str(request, "xml")
    started = time.perf_counter()
    mods_applied: Optional[int] = None
    extra: dict = {}
    with limits_scope(limits):
        if kind == "validate":
            which = request.get("schema", "target")
            if which not in ("source", "target"):
                raise MalformedRequestError(
                    "request field 'schema' must be 'source' or 'target'"
                )
            schema = pair.source if which == "source" else pair.target
            document = parse(xml, limits=limits, symbols=schema.symbols)
            report = validate_document(
                schema, document, collect_stats=False, limits=limits
            )
        elif kind == "cast":
            report = cast_text(
                pair,
                xml,
                limits=limits,
                stream_skip=bool(request.get("stream_skip", True)),
                trusted=bool(request.get("trusted", False)),
            )
        elif kind == "cast-with-mods":
            program_wire = request.get("program")
            if program_wire is not None and request.get("mods"):
                raise MalformedRequestError(
                    "request carries both 'mods' (instance deltas) and "
                    "'program' (parametric rules); send one"
                )
            if program_wire is not None:
                from repro.core.updateprog import (
                    UpdateProgram,
                    cast_text_with_program,
                )

                program = UpdateProgram.from_wire(program_wire)
                report, classification = cast_text_with_program(
                    pair,
                    program,
                    xml,
                    limits=limits,
                    require_safe=bool(request.get("require_safe", False)),
                )
                mods_applied = len(program.rules)
                extra["classification"] = classification.value
            else:
                document = parse(xml, limits=limits, symbols=pair.symbols)
                session = UpdateSession(document)
                apply_mods(session, request.get("mods", []))
                report = CastWithModificationsValidator(
                    pair, collect_stats=False, limits=limits
                ).validate(session)
                mods_applied = session.update_count
        elif kind == "cast-chain":
            chain = getattr(pair, "chain", None)
            if chain is None:
                raise ChainMismatchError(
                    f"pair {pair_name or fingerprint or '?'!r} is not an "
                    "evolution chain; POST /cast against it instead"
                )
            report = chain.cast_text(
                xml,
                limits=limits,
                stream_skip=bool(request.get("stream_skip", True)),
                trusted=bool(request.get("trusted", False)),
            )
            extra["chain_length"] = len(chain.schemas)
        else:
            raise MalformedRequestError(f"unknown job kind {kind!r}")
    payload = report_payload(
        report,
        pair=pair_name,
        fingerprint=fingerprint,
        elapsed_ms=(time.perf_counter() - started) * 1000.0,
    )
    if mods_applied is not None:
        payload["mods_applied"] = mods_applied
    payload.update(extra)
    return payload


def spec_from_wire(request: dict):
    """A ``POST /admin/pairs`` body → :class:`PairSpec`.

    Schema sources are either file paths (``source``/``target``) or
    inline schema text (``source_text`` + ``source_kind`` of ``dtd`` or
    ``xsd``; likewise for the target).  ``deadline_seconds`` sets the
    pair's per-request budget.  Everything wrong with the body is a
    typed 400.
    """
    from repro.guards import DEFAULT_LIMITS
    from repro.service.registry import PairSpec

    name = require_str(request, "name")

    def schema_for(side: str):
        path = request.get(side)
        text = request.get(f"{side}_text")
        if (path is None) == (text is None):
            raise MalformedRequestError(
                f"admin register wants exactly one of {side!r} (a schema "
                f"file path) or '{side}_text' (inline schema text)"
            )
        if path is not None:
            if not isinstance(path, str) or not path:
                raise MalformedRequestError(
                    f"request field {side!r} must be a non-empty path"
                )
            return path
        kind = request.get(f"{side}_kind", "dtd")
        if kind not in ("dtd", "xsd"):
            raise MalformedRequestError(
                f"'{side}_kind' must be 'dtd' or 'xsd', got {kind!r}"
            )
        if not isinstance(text, str) or not text:
            raise MalformedRequestError(
                f"'{side}_text' must be non-empty schema text"
            )
        if kind == "dtd":
            from repro.schema.dtd import parse_dtd

            return parse_dtd(text, name=f"{name}:{side}")
        from repro.schema.xsd import parse_xsd

        return parse_xsd(text, name=f"{name}:{side}")

    limits = None
    deadline = request.get("deadline_seconds")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise MalformedRequestError(
                f"'deadline_seconds' must be a positive number, "
                f"got {deadline!r}"
            )
        limits = DEFAULT_LIMITS.with_overrides(
            deadline_seconds=float(deadline)
        )
    return PairSpec(
        name, schema_for("source"), schema_for("target"), limits=limits
    )
