"""Fleet-backed request execution: casts leave the GIL.

A ``ThreadingHTTPServer`` front can hold many connections, but every
validation it runs inline is serialized behind one GIL — the fused
kernel made each cast CPU-bound, so a busy service is pinned to one
core no matter how many handler threads exist.  :class:`FleetExecutor`
fixes the *within-process* half of that: handler threads submit
validation jobs to a small pool of resident worker processes and block
(cheaply, releasing the GIL) until the verdict comes back, so casts
from all connections run truly in parallel.

Design points, all inherited from :mod:`repro.core.fleet`:

* **Zero-copy pair transport.**  Every registered pair gets one
  :class:`~repro.core.fleet.PairTransport` created *before* the workers
  spawn — under the ``fork`` start method the compiled tables are
  inherited copy-on-write and nothing is pickled at all.  Pairs
  hot-registered after spawn get a forced shared-memory route
  (``pickle_count == 1``), because a running worker cannot inherit new
  parent state.  Jobs carry their pair's route, so a worker resolves
  (and caches) pairs lazily — no broadcast is needed when the registry
  mutates.
* **Crash recovery.**  A worker announces ``claim`` before running a
  job; if it dies mid-job the submitting thread's backstop timer fires,
  the corpse is reaped, a replacement spawns (bounded by a death
  budget), and the request answers a structured 500 with code
  ``worker-crash`` — never a hang, never a bare socket reset.
* **Worker recycling.**  After ``max_requests`` jobs or once its RSS
  exceeds ``max_rss_mb``, a worker finishes its current job, sends
  ``retire``, and exits; the parent spawns a fresh replacement.  Leaky
  or fragmented workers are rotated out gracefully using the same
  respawn path as crash recovery.

Outcomes cross the process boundary as plain JSON — status, payload,
``Retry-After`` — computed worker-side by the same
:func:`~repro.service.diagnostics.http_status` /
:func:`~repro.service.diagnostics.error_payload` mapping the inline
path uses, so the two execution paths are wire-identical (exception
objects never travel, which also sidesteps unpicklable errors).
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.fleet import PairTransport, resolve_pair_route
from repro.errors import WORKER_CRASH_CODE
from repro.guards import Limits
from repro.service.registry import RegisteredPair

__all__ = ["ExecutorOutcome", "FleetExecutor", "WireOutcomeError"]


@dataclass(frozen=True)
class ExecutorOutcome:
    """One dispatched request's wire-ready result."""

    status: int
    payload: dict
    retry_after: Optional[float] = None


class WireOutcomeError(Exception):
    """A non-200 outcome computed on the far side of the process
    boundary; the handler sends it verbatim instead of re-deriving a
    status from an exception it never saw."""

    def __init__(self, outcome: ExecutorOutcome):
        self.outcome = outcome
        super().__init__(f"executor outcome {outcome.status}")


def _crash_outcome() -> ExecutorOutcome:
    return ExecutorOutcome(
        status=500,
        payload={
            "error": {
                "code": WORKER_CRASH_CODE,
                "message": (
                    "worker process died while handling this request"
                ),
            },
            "diagnostics": [],
        },
    )


def _worker_should_retire(
    served: int,
    max_requests: Optional[int],
    max_rss_mb: Optional[float],
) -> bool:
    if max_requests is not None and served >= max_requests:
        return True
    if max_rss_mb is not None:
        try:
            import resource

            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except Exception:
            return False
        # ru_maxrss is KiB on Linux, bytes on macOS.
        import sys

        rss_mb = (
            rss_kb / (1024.0 * 1024.0)
            if sys.platform == "darwin"
            else rss_kb / 1024.0
        )
        if rss_mb >= max_rss_mb:
            return True
    return False


def _executor_worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    max_requests: Optional[int],
    max_rss_mb: Optional[float],
) -> None:
    """A resident validation worker: pull jobs until the ``None``
    sentinel (or self-retirement).

    Protocol (worker → parent):

    * ``("claim", worker_id, req_id)`` — the job left the queue;
    * ``("res", worker_id, req_id, status, payload, retry_after)`` —
      the job's wire-ready outcome;
    * ``("retire", worker_id)`` — recycling threshold hit; the worker
      exits after this message and the parent spawns a replacement.
    """
    from repro.service.diagnostics import (
        error_payload,
        http_status,
        retry_after,
    )
    from repro.service.work import perform_request

    pairs: dict[str, object] = {}
    served = 0
    try:
        while True:
            item = task_queue.get()
            if item is None:
                return
            req_id, kind, name, fingerprint, route, limits, request = item
            result_queue.put(("claim", worker_id, req_id))
            try:
                pair = pairs.get(fingerprint)
                if pair is None:
                    pair = resolve_pair_route(route)
                    pairs[fingerprint] = pair
                payload = perform_request(
                    kind,
                    pair,
                    request,
                    limits,
                    pair_name=name,
                    fingerprint=fingerprint,
                )
                message = ("res", worker_id, req_id, 200, payload, None)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:  # noqa: BLE001 — wire contract
                message = (
                    "res",
                    worker_id,
                    req_id,
                    http_status(error),
                    error_payload(error),
                    retry_after(error),
                )
            result_queue.put(message)
            served += 1
            if _worker_should_retire(served, max_requests, max_rss_mb):
                result_queue.put(("retire", worker_id))
                return
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover - teardown
        return


@dataclass
class _Pending:
    event: threading.Event = field(default_factory=threading.Event)
    outcome: Optional[ExecutorOutcome] = None
    claimed_by: Optional[int] = None


class FleetExecutor:
    """A resident pool of request workers shared by all handler threads.

    Built once per service process after warm-up (the fork routes need
    the compiled pairs parked *before* the workers exist).  ``submit``
    is thread-safe; a single collector thread files results back to the
    waiting submitters.
    """

    #: Extra seconds past a request's residual deadline before the
    #: submitter declares the worker hung/dead and reaps it.
    crash_grace = 2.0

    def __init__(
        self,
        workers: int,
        *,
        start_method: Optional[str] = None,
        max_requests_per_worker: Optional[int] = None,
        max_worker_rss_mb: Optional[float] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.max_requests_per_worker = max_requests_per_worker
        self.max_worker_rss_mb = max_worker_rss_mb
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(start_method)
        self._start_method = self._ctx.get_start_method()
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._transports: dict[str, PairTransport] = {}
        self._routes: dict[str, tuple] = {}
        self._pending: dict[int, _Pending] = {}
        self._processes: dict[int, object] = {}
        self._lock = threading.Lock()
        self._req_seq = itertools.count(1)
        self._worker_seq = itertools.count(1)
        self._spawned = False
        self._closed = False
        #: Replacement spawns remaining before the executor stops
        #: covering for dying workers (a crash-looping pair must not
        #: fork-bomb the box).
        self.death_budget = max(2 * workers, 4)
        #: Observability: recycled + crashed worker counts.
        self.recycled = 0
        self.crashed = 0
        self._collector = threading.Thread(
            target=self._collect, name="repro-executor-collect", daemon=True
        )

    # -- lifecycle ----------------------------------------------------------

    def register_pair(self, entry: RegisteredPair) -> None:
        """Create this pair's transport.  Before :meth:`start` the
        cheapest route wins (fork COW when available); afterwards the
        route is forced through shared memory, because running workers
        cannot inherit new parent state."""
        with self._lock:
            if entry.fingerprint in self._routes:
                return
            method = self._start_method if not self._spawned else "spawn"
            transport = PairTransport(entry.pair, method)
            self._transports[entry.fingerprint] = transport
            self._routes[entry.fingerprint] = transport.route

    def start(self) -> None:
        """Spawn the workers.  Call after every boot-time pair is
        registered so fork inheritance covers them all."""
        if self._spawned:
            raise RuntimeError("executor already started")
        self._spawned = True
        for _ in range(self.workers):
            self._spawn_worker()
        self._collector.start()

    def _spawn_worker(self) -> int:
        worker_id = next(self._worker_seq)
        process = self._ctx.Process(
            target=_executor_worker_main,
            args=(
                worker_id,
                self._task_queue,
                self._result_queue,
                self.max_requests_per_worker,
                self.max_worker_rss_mb,
            ),
            daemon=True,
        )
        process.start()
        self._processes[worker_id] = process
        return worker_id

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            processes = dict(self._processes)
            self._processes.clear()
        for _ in processes:
            try:
                self._task_queue.put_nowait(None)
            except Exception:
                break
        for process in processes.values():
            process.join(timeout=2.0)
        for process in processes.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=0.5)
        try:
            self._result_queue.put(None)
        except Exception:
            pass
        if self._collector.is_alive():
            self._collector.join(timeout=2.0)
        for q in (self._task_queue, self._result_queue):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        # Transports stay open for the executor's whole life (an
        # in-flight job may resolve its shm route at any moment); they
        # are released here, all at once.
        for transport in self._transports.values():
            transport.close()
        self._transports.clear()
        # Unblock any submitter still waiting.
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for item in pending:
            item.outcome = _crash_outcome()
            item.event.set()

    def __enter__(self) -> "FleetExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- result collection ---------------------------------------------------

    def _collect(self) -> None:
        while True:
            try:
                message = self._result_queue.get()
            except (EOFError, OSError):  # pragma: no cover - teardown
                return
            if message is None:
                return
            tag = message[0]
            if tag == "claim":
                _, worker_id, req_id = message
                with self._lock:
                    item = self._pending.get(req_id)
                    if item is not None:
                        item.claimed_by = worker_id
            elif tag == "res":
                _, worker_id, req_id, status, payload, hint = message
                with self._lock:
                    item = self._pending.pop(req_id, None)
                if item is not None:
                    item.outcome = ExecutorOutcome(status, payload, hint)
                    item.event.set()
            elif tag == "retire":
                (_, worker_id) = message
                self.recycled += 1
                self._replace_worker(worker_id, reason="recycled")

    def _replace_worker(self, worker_id: int, *, reason: str) -> None:
        with self._lock:
            process = self._processes.pop(worker_id, None)
            if self._closed:
                return
            if reason == "crashed":
                if self.death_budget <= 0:
                    return
                self.death_budget -= 1
        if process is not None:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=0.5)
        self._spawn_worker()

    def _reap_crashed(self) -> None:
        """Bury any worker that died without saying goodbye and restore
        pool width (bounded by the death budget)."""
        with self._lock:
            dead = [
                wid
                for wid, process in self._processes.items()
                if not process.is_alive()
            ]
        for worker_id in dead:
            self.crashed += 1
            self._replace_worker(worker_id, reason="crashed")

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        kind: str,
        entry: RegisteredPair,
        request: dict,
        limits: Limits,
        *,
        residual_seconds: float,
    ) -> ExecutorOutcome:
        """Run one request on the pool; blocks the calling handler
        thread (GIL released) until the outcome arrives.

        ``limits`` must already carry the residual deadline — the
        worker enforces it, so a slow validation answers 408 from the
        far side.  The parent-side wait is only a *backstop* at
        ``residual + crash_grace``: when it fires the claiming worker
        is presumed dead, reaped, replaced, and the request answers a
        structured ``worker-crash`` 500.
        """
        if self._closed or not self._spawned:
            return _crash_outcome()
        route = self._routes.get(entry.fingerprint)
        if route is None:
            self.register_pair(entry)
            route = self._routes[entry.fingerprint]
        self._reap_crashed()
        req_id = next(self._req_seq)
        item = _Pending()
        with self._lock:
            self._pending[req_id] = item
        self._task_queue.put(
            (
                req_id,
                kind,
                entry.name,
                entry.fingerprint,
                route,
                limits,
                request,
            )
        )
        budget = max(residual_seconds, 0.1) + self.crash_grace
        deadline = time.monotonic() + budget
        while not item.event.wait(timeout=0.2):
            if item.outcome is not None:
                break
            if time.monotonic() >= deadline:
                return self._give_up(req_id, item)
            # A worker that died holding this claim will never answer;
            # notice early instead of riding out the whole backstop.
            if item.claimed_by is not None:
                with self._lock:
                    process = self._processes.get(item.claimed_by)
                if process is not None and not process.is_alive():
                    return self._give_up(req_id, item)
        return item.outcome or _crash_outcome()

    def _give_up(self, req_id: int, item: _Pending) -> ExecutorOutcome:
        with self._lock:
            still_pending = self._pending.pop(req_id, None) is not None
        if not still_pending and item.outcome is not None:
            # The result raced the timeout — take it.
            return item.outcome
        worker_id = item.claimed_by
        if worker_id is not None:
            with self._lock:
                process = self._processes.get(worker_id)
            if process is not None:
                if process.is_alive():
                    process.terminate()
                self.crashed += 1
                self._replace_worker(worker_id, reason="crashed")
        return _crash_outcome()

    # -- observability -------------------------------------------------------

    def describe(self) -> dict:
        with self._lock:
            alive = sum(
                1 for p in self._processes.values() if p.is_alive()
            )
        return {
            "workers": self.workers,
            "alive": alive,
            "start_method": self._start_method,
            "recycled": self.recycled,
            "crashed": self.crashed,
            "death_budget": self.death_budget,
            "pairs_routed": len(self._routes),
        }
