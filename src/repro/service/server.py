"""The hardened HTTP front door: endpoints, deadlines, graceful drain.

Stdlib-only (``http.server.ThreadingHTTPServer``): one daemon thread
per connection, with :class:`~repro.service.admission.AdmissionController`
bounding how many of those threads may *work* at once.  The request
lifecycle is the robustness contract:

1. **Routing** — unknown paths and methods answer 404/405 before any
   resource is committed.
2. **Admission** — a work slot is taken (or the request is shed with
   429/503 + ``Retry-After``) before a single body byte is read.
3. **Deadline** — the per-request :class:`~repro.guards.Deadline`
   starts at admission.  Everything after — body read, JSON decode,
   parse, validation — runs on its *residual* budget
   (:meth:`~repro.guards.Deadline.remaining`), never a fresh clock.
4. **Body guards** — ``Content-Length`` is required (411) and checked
   against the byte bound *before* any read (413, reusing
   :func:`~repro.guards.check_document_size`); the read itself is
   paced by the residual deadline (slow-loris → 408) and a short read
   is a typed 400, never a hang.
5. **Validation** — inside ``limits_scope`` of the pair's own
   ``Limits`` with ``deadline_seconds`` set to the residual request
   budget (the ``SCHEMA_CONFIG`` idiom: each pair may carry its own
   cap, the request budget can only tighten it).
6. **Response** — verdicts are 200 with lint-style diagnostics;
   every ``ReproError`` maps through
   :func:`~repro.service.diagnostics.http_status`; anything else is a
   *structured* 500 (code ``internal``).  No adversarial input can
   produce a bare 500.

**Drain** (SIGTERM/SIGINT): stop admitting (503 ``draining``), finish
in-flight requests up to ``drain_grace`` seconds, flip ``healthz``
unhealthy, stop the listener, exit 0.  The invariant — checked by the
load-test harness — is zero accepted-but-unanswered requests: every
admitted request gets its verdict, every shed request gets its 503.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.core.castmods import CastWithModificationsValidator
from repro.core.cast import cast_text
from repro.core.updates import UpdateSession
from repro.core.validator import validate_document
from repro.dewey import Dewey
from repro.errors import DeadlineExceededError, ReproError
from repro.guards import Deadline, Limits, check_document_size, limits_scope
from repro.service.admission import AdmissionController
from repro.service.diagnostics import (
    error_payload,
    http_status,
    report_payload,
    retry_after,
)
from repro.service.errors import (
    LengthRequiredError,
    MalformedRequestError,
    MethodNotAllowedError,
    NotReadyError,
    RequestTimeoutError,
    TruncatedBodyError,
    UnknownRouteError,
)
from repro.service.registry import RegisteredPair, ServiceRegistry
from repro.xmltree.dom import Element, Text
from repro.xmltree.parser import parse

__all__ = ["ServiceConfig", "ValidationService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (per-pair budgets live in the registry)."""

    #: Work slots: requests validating concurrently.
    max_concurrent: int = 8
    #: Requests allowed to wait for a slot before shedding starts.
    max_queue: int = 16
    #: Longest a queued request may wait for a slot.
    queue_timeout: float = 1.0
    #: Admission-to-response wall-clock budget per request; the pair's
    #: own ``deadline_seconds`` can only tighten what is left of this.
    request_timeout: float = 30.0
    #: Per-client token bucket: requests/second (``None`` disables).
    rate: Optional[float] = None
    burst: int = 10
    #: Seconds in-flight requests get to finish after SIGTERM.
    drain_grace: float = 10.0
    #: Request-body byte bound checked against ``Content-Length``
    #: before any read; ``None`` falls back to the default ``Limits``
    #: document bound (the JSON envelope around a document is small).
    max_body_bytes: Optional[int] = None
    #: Socket timeout for reading the request line and headers.
    header_timeout: float = 10.0
    read_chunk: int = 64 * 1024
    #: Log one line per request to stderr (off in tests/benchmarks).
    log_requests: bool = False

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        for name in ("queue_timeout", "request_timeout", "drain_grace",
                     "header_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")


def _require_str(request: dict, field: str) -> str:
    value = request.get(field)
    if not isinstance(value, str) or not value:
        raise MalformedRequestError(
            f"request field {field!r} must be a non-empty string"
        )
    return value


def _resolve_node(document, path_text: str):
    """The node at a Dewey path (``""`` = root, steps index *all*
    children, text nodes included — the numbering ``Node.dewey()``
    reports)."""
    if not isinstance(path_text, str):
        raise MalformedRequestError("mod field 'path' must be a string")
    try:
        steps = Dewey.parse(path_text).path
    except ValueError as error:
        raise MalformedRequestError(str(error)) from None
    node = document.root
    for step in steps:
        children = getattr(node, "children", None)
        if children is None or step >= len(children):
            raise MalformedRequestError(
                f"Dewey path {path_text!r} does not address a node"
            )
        node = children[step]
    return node


def _apply_mods(session: UpdateSession, mods) -> None:
    """Replay a wire-encoded modification list into the session.

    Each mod is ``{"op": ..., "path": <Dewey>, ...}``; ops mirror the
    paper's update operations (§3.3).  A structurally bad mod is a 400;
    a semantically bad one (deleted target, bad position) surfaces as
    ``UpdateError`` — also a 400 — so no mod list can crash the server.
    """
    if not isinstance(mods, list):
        raise MalformedRequestError("'mods' must be a list of operations")
    for index, mod in enumerate(mods):
        if not isinstance(mod, dict) or not isinstance(mod.get("op"), str):
            raise MalformedRequestError(
                f"mods[{index}] must be an object with an 'op' string"
            )
        op = mod["op"]
        try:
            _apply_one_mod(session, mod)
        except (KeyError, TypeError) as error:
            raise MalformedRequestError(
                f"mods[{index}] ({op}): missing or mistyped field "
                f"({error})"
            ) from None
        except MalformedRequestError as error:
            raise MalformedRequestError(
                f"mods[{index}] ({op}): {error}"
            ) from None


def _apply_one_mod(session: UpdateSession, mod: dict) -> None:
    op = mod["op"]
    document = session.document
    if op == "rename":
        node = _resolve_node(document, mod["path"])
        if not isinstance(node, Element):
            raise MalformedRequestError("rename targets an element")
        session.rename(node, str(mod["label"]))
    elif op == "replace-text":
        node = _resolve_node(document, mod["path"])
        if not isinstance(node, Text):
            raise MalformedRequestError("replace-text targets a text node")
        session.replace_text(node, str(mod["value"]))
    elif op == "set-attribute":
        node = _resolve_node(document, mod["path"])
        if not isinstance(node, Element):
            raise MalformedRequestError("set-attribute targets an element")
        session.set_attribute(node, str(mod["name"]), str(mod["value"]))
    elif op == "remove-attribute":
        node = _resolve_node(document, mod["path"])
        if not isinstance(node, Element):
            raise MalformedRequestError(
                "remove-attribute targets an element"
            )
        session.remove_attribute(node, str(mod["name"]))
    elif op == "delete":
        node = _resolve_node(document, mod["path"])
        session.delete(node)
    elif op == "insert-element":
        parent = _resolve_node(document, mod["path"])
        if not isinstance(parent, Element):
            raise MalformedRequestError(
                "insert-element's path addresses the parent element"
            )
        session.insert_element(
            parent, int(mod["position"]), str(mod["label"])
        )
    elif op == "insert-text":
        parent = _resolve_node(document, mod["path"])
        if not isinstance(parent, Element):
            raise MalformedRequestError(
                "insert-text's path addresses the parent element"
            )
        session.insert_text(parent, int(mod["position"]), str(mod["value"]))
    else:
        raise MalformedRequestError(f"unknown op {op!r}")


class ValidationService:
    """One registry + one admission controller + one HTTP listener.

    ``after_admit_hook`` is a test seam: called with the route inside
    the request thread after admission and before the body read, it
    lets fault-injection suites hold requests in flight (drain and
    overload tests) without timing races.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        config: Optional[ServiceConfig] = None,
        *,
        after_admit_hook: Optional[Callable[[str], None]] = None,
    ):
        self.registry = registry
        self.config = config or ServiceConfig()
        self.after_admit_hook = after_admit_hook
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            max_queue=self.config.max_queue,
            queue_timeout=self.config.queue_timeout,
            rate=self.config.rate,
            burst=self.config.burst,
        )
        self.started_at: Optional[float] = None
        self.warm_error: Optional[BaseException] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._warm_thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._drain_started = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind, start serving, and warm the registry in the background.

        The listener answers immediately — ``healthz`` 200, ``readyz``
        503 — and ``readyz`` flips to 200 only once every pair is
        compiled (or restored from the artifact cache).  Returns the
        bound ``(host, port)``; ``port=0`` picks an ephemeral port.
        """
        if self._httpd is not None:
            raise RuntimeError("service already started")
        handler = type(
            "BoundHandler", (_RequestHandler,), {"service": self}
        )
        handler.timeout = self.config.header_timeout
        server_cls = type(
            "BoundServer",
            (ThreadingHTTPServer,),
            # Deep accept backlog: under overload, connections must
            # reach the admission controller (which answers 503 fast)
            # instead of stalling in the kernel SYN queue, where the
            # only "answer" is a retransmit timer.
            {"request_queue_size": 128},
        )
        self._httpd = server_cls((host, port), handler)
        self.started_at = time.monotonic()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._serve_thread.start()
        if self.registry.ready:
            self._ready.set()
        else:
            self._warm_thread = threading.Thread(
                target=self._warm, name="repro-serve-warm", daemon=True
            )
            self._warm_thread.start()
        return self._httpd.server_address[0], self._httpd.server_address[1]

    def _warm(self) -> None:
        try:
            self.registry.warm()
        except BaseException as error:  # noqa: BLE001 — surfaced via readyz
            self.warm_error = error
            return
        self._ready.set()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("service not started")
        return self._httpd.server_address[1]

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until warm-up finishes; ``False`` on timeout or a
        warm-up failure (see :attr:`warm_error`)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._ready.is_set():
            if self.warm_error is not None:
                return False
            remaining = (
                0.05 if deadline is None
                else min(0.05, deadline - time.monotonic())
            )
            if remaining <= 0:
                return False
            time.sleep(remaining)
        return True

    @property
    def ready(self) -> bool:
        return self._ready.is_set() and not self._draining.is_set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def begin_drain(self) -> None:
        """Start graceful shutdown (what SIGTERM triggers): refuse new
        work, let in-flight requests finish up to ``drain_grace``, then
        stop the listener.  Idempotent, non-blocking, signal-safe."""
        if not self._drain_started.acquire(blocking=False):
            return
        self._draining.set()
        self.admission.start_drain()
        threading.Thread(
            target=self._drain_and_stop,
            name="repro-serve-drain",
            daemon=True,
        ).start()

    def _drain_and_stop(self) -> None:
        self.admission.await_idle(self.config.drain_grace)
        httpd = self._httpd
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        self._stopped.set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """:meth:`begin_drain` + wait for the listener to stop."""
        self.begin_drain()
        budget = (
            self.config.drain_grace + 5.0 if timeout is None else timeout
        )
        return self._stopped.wait(budget)

    def close(self) -> None:
        """Immediate stop (tests/benchmarks): no grace for in-flight."""
        self._draining.set()
        self.admission.start_drain()
        httpd = self._httpd
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        self._stopped.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM and SIGINT → graceful drain (main thread only)."""

        def _handle(signum, frame):  # noqa: ARG001
            self.begin_drain()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def run_forever(self) -> int:
        """Block until drained (CLI foreground mode); returns the
        process exit code — 0 for a clean drain."""
        while not self._stopped.wait(0.2):
            pass
        return 0

    # -- request handling (called from handler threads) ----------------------

    def handle_get(self, route: str) -> tuple[int, dict, dict]:
        """GET endpoints: (status, payload, extra headers).  These never
        pass admission — health probes must answer even at 2× load."""
        if route == "/healthz":
            draining = self._draining.is_set()
            payload = {
                "status": "draining" if draining else "ok",
                "ready": self.ready,
                "inflight": self.admission.inflight,
                "uptime_seconds": (
                    round(time.monotonic() - self.started_at, 3)
                    if self.started_at is not None
                    else 0.0
                ),
                "admission": self.admission.stats.as_dict(),
            }
            return (503 if draining else 200), payload, {}
        if route == "/readyz":
            if self.ready:
                return 200, {
                    "ready": True,
                    "pairs": len(self.registry),
                    "warm_seconds": round(self.registry.warm_seconds, 3),
                }, {}
            if self.warm_error is not None:
                payload = error_payload(self.warm_error)
                payload["ready"] = False
                return 503, payload, {}
            reason = (
                "draining" if self._draining.is_set() else "warming up"
            )
            return 503, {"ready": False, "reason": reason}, {
                "Retry-After": "1"
            }
        if route == "/pairs":
            return 200, {"pairs": self.registry.describe()}, {}
        raise UnknownRouteError(f"no endpoint at {route}")

    def dispatch_post(self, route: str, request: dict,
                      deadline: Deadline) -> dict:
        if route == "/validate":
            return self._do_validate(request, deadline)
        if route == "/cast":
            return self._do_cast(request, deadline)
        if route == "/cast-with-mods":
            return self._do_cast_with_mods(request, deadline)
        raise UnknownRouteError(f"no endpoint at {route}")

    def _resolve_pair(self, request: dict) -> RegisteredPair:
        return self.registry.get(_require_str(request, "pair"))

    def _residual_limits(
        self, entry: RegisteredPair, deadline: Deadline
    ) -> Limits:
        """The pair's ``Limits`` with ``deadline_seconds`` set to what
        is *left* of the request budget — admission wait and body read
        have already spent their share; validation gets the rest, and
        the pair's own cap can only tighten it further."""
        residual = deadline.remaining()
        if residual <= 0:
            raise DeadlineExceededError(
                f"request deadline of {deadline.budget:g}s exhausted "
                "before validation began"
            )
        budget = entry.limits.deadline_seconds
        budget = residual if budget is None else min(budget, residual)
        return entry.limits.with_overrides(deadline_seconds=budget)

    def _do_validate(self, request: dict, deadline: Deadline) -> dict:
        entry = self._resolve_pair(request)
        xml = _require_str(request, "xml")
        which = request.get("schema", "target")
        if which not in ("source", "target"):
            raise MalformedRequestError(
                "request field 'schema' must be 'source' or 'target'"
            )
        schema = entry.pair.source if which == "source" else entry.pair.target
        limits = self._residual_limits(entry, deadline)
        started = time.perf_counter()
        with limits_scope(limits):
            document = parse(xml, limits=limits, symbols=schema.symbols)
            report = validate_document(
                schema, document, collect_stats=False, limits=limits
            )
        return report_payload(
            report,
            pair=entry.name,
            fingerprint=entry.fingerprint,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )

    def _do_cast(self, request: dict, deadline: Deadline) -> dict:
        entry = self._resolve_pair(request)
        xml = _require_str(request, "xml")
        limits = self._residual_limits(entry, deadline)
        started = time.perf_counter()
        with limits_scope(limits):
            report = cast_text(
                entry.pair,
                xml,
                limits=limits,
                stream_skip=bool(request.get("stream_skip", True)),
                trusted=bool(request.get("trusted", False)),
            )
        return report_payload(
            report,
            pair=entry.name,
            fingerprint=entry.fingerprint,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )

    def _do_cast_with_mods(self, request: dict, deadline: Deadline) -> dict:
        entry = self._resolve_pair(request)
        xml = _require_str(request, "xml")
        limits = self._residual_limits(entry, deadline)
        started = time.perf_counter()
        with limits_scope(limits):
            document = parse(
                xml, limits=limits, symbols=entry.pair.symbols
            )
            session = UpdateSession(document)
            _apply_mods(session, request.get("mods", []))
            report = CastWithModificationsValidator(
                entry.pair, collect_stats=False, limits=limits
            ).validate(session)
        payload = report_payload(
            report,
            pair=entry.name,
            fingerprint=entry.fingerprint,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )
        payload["mods_applied"] = session.update_count
        return payload


class _RequestHandler(BaseHTTPRequestHandler):
    """One instance per connection; ``service`` is bound by
    :meth:`ValidationService.start` via a per-service subclass."""

    service: ValidationService  # overridden in the bound subclass
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    _GET_ROUTES = frozenset({"/healthz", "/readyz", "/pairs"})
    _POST_ROUTES = frozenset({"/validate", "/cast", "/cast-with-mods"})

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.service.config.log_requests:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _route(self) -> str:
        return self.path.split("?", 1)[0].rstrip("/") or "/"

    def _send_json(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if status >= 400:
            # Error paths may leave unread body bytes on the socket;
            # keep-alive would misparse them as the next request line.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_error_response(self, error: BaseException) -> None:
        status = http_status(error)
        headers = {}
        hint = retry_after(error)
        if hint is not None:
            headers["Retry-After"] = str(max(1, round(hint)))
        elif status == 503:
            headers["Retry-After"] = "1"
        self._send_json(status, error_payload(error), headers)

    # -- request body --------------------------------------------------------

    def _read_body(self, deadline: Deadline) -> bytes:
        """Read exactly ``Content-Length`` bytes under the residual
        request deadline; every failure mode is a typed error."""
        header = self.headers.get("Content-Length")
        if header is None:
            raise LengthRequiredError(
                "POST requests must carry Content-Length"
            )
        try:
            length = int(header)
        except ValueError:
            raise MalformedRequestError(
                f"unparseable Content-Length {header!r}"
            ) from None
        if length < 0:
            raise MalformedRequestError(
                f"negative Content-Length {length}"
            )
        config = self.service.config
        bound = config.max_body_bytes
        if bound is None:
            bound = Limits().max_document_bytes
        if bound is not None:
            # The 413 happens HERE, on the header, before any read: an
            # adversarial Content-Length never costs a byte of buffering.
            check_document_size(
                length,
                Limits(max_document_bytes=bound),
                what="request body",
            )
        received = bytearray()
        while len(received) < length:
            remaining = deadline.remaining()
            if remaining <= 0:
                raise RequestTimeoutError(
                    "request body arrived slower than the "
                    f"{deadline.budget:g}s request budget"
                )
            self.connection.settimeout(remaining)
            want = min(config.read_chunk, length - len(received))
            try:
                chunk = self.rfile.read(want)
            except (socket.timeout, TimeoutError):
                raise RequestTimeoutError(
                    "request body arrived slower than the "
                    f"{deadline.budget:g}s request budget"
                ) from None
            if not chunk:
                raise TruncatedBodyError(
                    f"request body ended after {len(received)} of "
                    f"{length} promised bytes"
                )
            received.extend(chunk)
        return bytes(received)

    def _parse_request_json(self, body: bytes) -> dict:
        try:
            request = json.loads(body)
        except ValueError as error:
            raise MalformedRequestError(
                f"request body is not valid JSON: {error}"
            ) from None
        if not isinstance(request, dict):
            raise MalformedRequestError(
                "request body must be a JSON object"
            )
        return request

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server contract
        self._guarded(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802
        self._guarded(self._handle_post)

    def _guarded(self, handler: Callable[[], None]) -> None:
        try:
            handler()
        except ReproError as error:
            self._try_send_error(error)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 — structured 500
            self._try_send_error(error)

    def _try_send_error(self, error: BaseException) -> None:
        try:
            self._send_error_response(error)
        except OSError:
            self.close_connection = True

    def _handle_get(self) -> None:
        route = self._route()
        if route in self._POST_ROUTES:
            raise MethodNotAllowedError(f"{route} requires POST")
        status, payload, headers = self.service.handle_get(route)
        self._send_json(status, payload, headers)

    def _handle_post(self) -> None:
        service = self.service
        route = self._route()
        if route in self._GET_ROUTES:
            raise MethodNotAllowedError(f"{route} requires GET")
        if route not in self._POST_ROUTES:
            raise UnknownRouteError(f"no endpoint at {route}")
        if not service.registry.ready:
            if service.warm_error is not None:
                raise NotReadyError(
                    "service warm-up failed; see /readyz"
                )
            raise NotReadyError("service warm-up has not finished")
        client = self.client_address[0] if self.client_address else ""
        with service.admission.slot(client):
            # The request deadline starts when a slot is held — queue
            # wait was bounded separately — and everything downstream
            # spends from this one budget.
            deadline = Deadline(service.config.request_timeout)
            if service.after_admit_hook is not None:
                service.after_admit_hook(route)
            body = self._read_body(deadline)
            request = self._parse_request_json(body)
            payload = service.dispatch_post(route, request, deadline)
        self._send_json(200, payload)
