"""The hardened HTTP front door: endpoints, deadlines, graceful drain.

Stdlib-only (``http.server.ThreadingHTTPServer``): one daemon thread
per connection, with :class:`~repro.service.admission.AdmissionController`
bounding how many of those threads may *work* at once.  The request
lifecycle is the robustness contract:

1. **Routing** — unknown paths and methods answer 404/405 before any
   resource is committed.
2. **Admission** — a work slot is taken (or the request is shed with
   429/503 + ``Retry-After``) before a single body byte is read.
3. **Deadline** — the per-request :class:`~repro.guards.Deadline`
   starts at admission.  Everything after — body read, JSON decode,
   parse, validation — runs on its *residual* budget
   (:meth:`~repro.guards.Deadline.remaining`), never a fresh clock.
4. **Body guards** — ``Content-Length`` is required (411) and checked
   against the byte bound *before* any read (413, reusing
   :func:`~repro.guards.check_document_size`); the read itself is
   paced by the residual deadline (slow-loris → 408) and a short read
   is a typed 400, never a hang.
5. **Validation** — inside ``limits_scope`` of the pair's own
   ``Limits`` with ``deadline_seconds`` set to the residual request
   budget (the ``SCHEMA_CONFIG`` idiom: each pair may carry its own
   cap, the request budget can only tighten it).  With
   ``fleet_workers > 0`` the work runs on a resident
   :class:`~repro.service.executor.FleetExecutor` process instead of
   the handler thread, so CPU-bound casts from many connections stop
   serializing behind the GIL.
6. **Response** — verdicts are 200 with lint-style diagnostics;
   every ``ReproError`` maps through
   :func:`~repro.service.diagnostics.http_status`; anything else is a
   *structured* 500 (code ``internal``).  No adversarial input can
   produce a bare 500.

**Keep-alive**: connections are persistent (HTTP/1.1) and may carry up
to ``max_requests_per_connection`` requests, pipelining included — the
buffered ``rfile`` naturally serves back-to-back request bytes.  A
response closes the connection only when it must: the client asked
(``Connection: close`` / HTTP/1.0), the request's body was not fully
consumed (an error before or during the body read leaves unread bytes
that would be misparsed as the next request line — exactly the
truncated-body case), the per-connection request cap is reached, or
the service is draining.  Every close is explicit: ``Connection:
close`` on the final response, so a pipelining client knows which
requests to replay elsewhere.

**Admin plane** (``POST /admin/pairs``, ``DELETE /admin/pairs/<key>``):
hot schema-pair register/retire without a restart.  Admin requests skip
admission slots (registering a pair must succeed even at 2× overload —
it is how an operator *relieves* overload) but still respect draining
and warm-up.  Mutations are race-free because the registry is
fingerprint-addressed and in-flight requests hold their
``RegisteredPair`` reference; across a pre-fork fleet they propagate
through the :class:`~repro.service.reload.ReloadJournal`.

**Drain** (SIGTERM/SIGINT): stop admitting (503 ``draining``), finish
in-flight requests up to ``drain_grace`` seconds, flip ``healthz``
unhealthy, stop the listener, exit 0.  The invariant — checked by the
load-test harness — is zero accepted-but-unanswered requests: every
admitted request gets its verdict, every shed request gets its 503.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.errors import ReproError, SchemaError
from repro.guards import Deadline, Limits, check_document_size
from repro.service.admission import AdmissionController
from repro.service.diagnostics import (
    error_payload,
    http_status,
    retry_after,
)
from repro.service.errors import (
    DrainingError,
    LengthRequiredError,
    MalformedRequestError,
    MethodNotAllowedError,
    NotReadyError,
    RequestTimeoutError,
    TruncatedBodyError,
    UnknownRouteError,
)
from repro.service.registry import RegisteredPair, ServiceRegistry
from repro.service.work import (
    VALIDATION_KINDS,
    perform_request,
    require_str,
    residual_limits,
    spec_from_wire,
)

__all__ = ["ServiceConfig", "ValidationService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (per-pair budgets live in the registry)."""

    #: Work slots: requests validating concurrently.
    max_concurrent: int = 8
    #: Requests allowed to wait for a slot before shedding starts.
    max_queue: int = 16
    #: Longest a queued request may wait for a slot.
    queue_timeout: float = 1.0
    #: Admission-to-response wall-clock budget per request; the pair's
    #: own ``deadline_seconds`` can only tighten what is left of this.
    request_timeout: float = 30.0
    #: Per-client token bucket: requests/second (``None`` disables).
    rate: Optional[float] = None
    burst: int = 10
    #: Seconds in-flight requests get to finish after SIGTERM.
    drain_grace: float = 10.0
    #: Request-body byte bound checked against ``Content-Length``
    #: before any read; ``None`` falls back to the default ``Limits``
    #: document bound (the JSON envelope around a document is small).
    max_body_bytes: Optional[int] = None
    #: Socket timeout for reading the request line and headers — also
    #: the idle timeout of a kept-alive connection between requests.
    header_timeout: float = 10.0
    read_chunk: int = 64 * 1024
    #: Log one line per request to stderr (off in tests/benchmarks).
    log_requests: bool = False
    #: Persistent connections (HTTP/1.1 keep-alive + pipelining).
    keep_alive: bool = True
    #: Requests served on one connection before it is closed (bounds
    #: how long a single client can monopolize a handler thread).
    max_requests_per_connection: int = 100
    #: Resident validation worker processes; 0 runs validation inline
    #: in handler threads (the single-core mode).
    fleet_workers: int = 0
    #: Recycle a fleet worker after this many requests (``None`` never).
    max_requests_per_worker: Optional[int] = None
    #: Recycle a fleet worker once its RSS exceeds this (``None`` never).
    max_worker_rss_mb: Optional[float] = None
    #: Enable ``/admin/pairs`` hot register/retire endpoints.
    admin: bool = True
    #: Shared JSON-lines journal propagating admin mutations across a
    #: pre-fork fleet (``None``: mutations stay process-local).
    reload_journal: Optional[str] = None
    #: Seconds between journal polls.
    reload_poll: float = 0.25

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.max_requests_per_connection < 1:
            raise ValueError("max_requests_per_connection must be >= 1")
        if self.fleet_workers < 0:
            raise ValueError("fleet_workers must be >= 0")
        for name in ("queue_timeout", "request_timeout", "drain_grace",
                     "header_timeout", "reload_poll"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        for name in ("max_requests_per_worker", "max_worker_rss_mb"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be > 0 when set")


class _BoundServer(ThreadingHTTPServer):
    """Per-service listener.

    ``reuse_port`` lets N pre-forked processes bind the same address —
    the kernel load-balances accepts across them.  An already-bound
    ``listen_socket`` (the no-``SO_REUSEPORT`` fallback: one parent
    socket inherited across fork) is adopted instead of binding.
    """

    #: Deep accept backlog: under overload, connections must reach the
    #: admission controller (which answers 503 fast) instead of
    #: stalling in the kernel SYN queue, where the only "answer" is a
    #: retransmit timer.
    request_queue_size = 128
    reuse_port = False

    def server_bind(self) -> None:
        if self.reuse_port:
            self.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        super().server_bind()

    def adopt_socket(self, listener: socket.socket) -> None:
        self.socket.close()
        self.socket = listener
        self.server_address = listener.getsockname()[:2]
        # What HTTPServer.server_bind would have set; the parent
        # already bound and listened, so nothing else to do.
        self.server_name, self.server_port = self.server_address


class ValidationService:
    """One registry + one admission controller + one HTTP listener.

    ``after_admit_hook`` is a test seam: called with the route inside
    the request thread after admission and before the body read, it
    lets fault-injection suites hold requests in flight (drain and
    overload tests) without timing races.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        config: Optional[ServiceConfig] = None,
        *,
        after_admit_hook: Optional[Callable[[str], None]] = None,
    ):
        self.registry = registry
        self.config = config or ServiceConfig()
        self.after_admit_hook = after_admit_hook
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            max_queue=self.config.max_queue,
            queue_timeout=self.config.queue_timeout,
            rate=self.config.rate,
            burst=self.config.burst,
        )
        self.started_at: Optional[float] = None
        self.warm_error: Optional[BaseException] = None
        self.executor = None
        self._reload = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._warm_thread: Optional[threading.Thread] = None
        self._reload_thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._drain_started = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        reuse_port: bool = False,
        listen_socket: Optional[socket.socket] = None,
    ) -> tuple[str, int]:
        """Bind, start serving, and warm the registry in the background.

        The listener answers immediately — ``healthz`` 200, ``readyz``
        503 — and ``readyz`` flips to 200 only once every pair is
        compiled (or restored from the artifact cache).  Returns the
        bound ``(host, port)``; ``port=0`` picks an ephemeral port.

        ``reuse_port`` binds with ``SO_REUSEPORT`` (pre-fork siblings
        share the port); ``listen_socket`` adopts an inherited,
        already-listening socket instead of binding one.
        """
        if self._httpd is not None:
            raise RuntimeError("service already started")
        handler = type(
            "BoundHandler", (_RequestHandler,), {"service": self}
        )
        handler.timeout = self.config.header_timeout
        server_cls = type(
            "BoundServer", (_BoundServer,), {"reuse_port": reuse_port}
        )
        httpd = server_cls((host, port), handler, bind_and_activate=False)
        try:
            if listen_socket is not None:
                httpd.adopt_socket(listen_socket)
            else:
                httpd.server_bind()
                httpd.server_activate()
        except BaseException:
            httpd.server_close()
            raise
        self._httpd = httpd
        self.started_at = time.monotonic()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._serve_thread.start()
        if self.registry.ready:
            self._ready.set()
            self._after_warm()
        else:
            self._warm_thread = threading.Thread(
                target=self._warm, name="repro-serve-warm", daemon=True
            )
            self._warm_thread.start()
        return self._httpd.server_address[0], self._httpd.server_address[1]

    def _warm(self) -> None:
        try:
            self.registry.warm()
        except BaseException as error:  # noqa: BLE001 — surfaced via readyz
            self.warm_error = error
            return
        try:
            self._after_warm()
        except BaseException as error:  # noqa: BLE001
            self.warm_error = error
            return
        self._ready.set()

    def _after_warm(self) -> None:
        """Executor spawn + reload watcher, both of which need a warmed
        registry (transports want compiled pairs; journal replay wants
        a registry that accepts register())."""
        if self.config.fleet_workers > 0 and self.executor is None:
            from repro.service.executor import FleetExecutor

            executor = FleetExecutor(
                self.config.fleet_workers,
                max_requests_per_worker=(
                    self.config.max_requests_per_worker
                ),
                max_worker_rss_mb=self.config.max_worker_rss_mb,
            )
            # Park every boot pair before the fork: workers inherit the
            # compiled tables copy-on-write, zero pickles.
            for entry in self.registry.entries():
                executor.register_pair(entry)
            executor.start()
            self.executor = executor
        if self.config.reload_journal is not None and self._reload is None:
            from repro.service.reload import ReloadJournal

            self._reload = ReloadJournal(self.config.reload_journal)
            self._reload_thread = threading.Thread(
                target=self._watch_reload,
                name="repro-serve-reload",
                daemon=True,
            )
            self._reload_thread.start()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("service not started")
        return self._httpd.server_address[1]

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until warm-up finishes; ``False`` on timeout or a
        warm-up failure (see :attr:`warm_error`)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._ready.is_set():
            if self.warm_error is not None:
                return False
            remaining = (
                0.05 if deadline is None
                else min(0.05, deadline - time.monotonic())
            )
            if remaining <= 0:
                return False
            time.sleep(remaining)
        return True

    @property
    def ready(self) -> bool:
        return self._ready.is_set() and not self._draining.is_set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def begin_drain(self) -> None:
        """Start graceful shutdown (what SIGTERM triggers): refuse new
        work, let in-flight requests finish up to ``drain_grace``, then
        stop the listener.  Idempotent, non-blocking, signal-safe."""
        if not self._drain_started.acquire(blocking=False):
            return
        self._draining.set()
        self.admission.start_drain()
        threading.Thread(
            target=self._drain_and_stop,
            name="repro-serve-drain",
            daemon=True,
        ).start()

    def _drain_and_stop(self) -> None:
        self.admission.await_idle(self.config.drain_grace)
        httpd = self._httpd
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if self.executor is not None:
            self.executor.close()
        self._stopped.set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """:meth:`begin_drain` + wait for the listener to stop."""
        self.begin_drain()
        budget = (
            self.config.drain_grace + 5.0 if timeout is None else timeout
        )
        return self._stopped.wait(budget)

    def close(self) -> None:
        """Immediate stop (tests/benchmarks): no grace for in-flight."""
        self._draining.set()
        self.admission.start_drain()
        httpd = self._httpd
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if self.executor is not None:
            self.executor.close()
        self._stopped.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM and SIGINT → graceful drain (main thread only)."""

        def _handle(signum, frame):  # noqa: ARG001
            self.begin_drain()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def run_forever(self) -> int:
        """Block until drained (CLI foreground mode); returns the
        process exit code — 0 for a clean drain."""
        while not self._stopped.wait(0.2):
            pass
        return 0

    # -- hot reload ----------------------------------------------------------

    def _watch_reload(self) -> None:
        """Apply sibling processes' admin mutations from the journal.
        Replay starts at offset zero, so a freshly (re)spawned child
        catches up on every mutation it missed."""
        while not self._stopped.is_set():
            try:
                for record in self._reload.poll():
                    self._apply_reload_record(record)
            except Exception:  # noqa: BLE001 — the watcher must survive
                pass
            self._stopped.wait(self.config.reload_poll)

    def _apply_reload_record(self, record: dict) -> None:
        """Replay one journal record; idempotent, silent on conflict
        (the originating process already answered its client)."""
        op = record.get("op")
        if op == "register":
            try:
                spec = spec_from_wire(record.get("body") or {})
                entry, created = self.registry.register(spec)
            except (ReproError, OSError):
                return
            if created and self.executor is not None:
                self.executor.register_pair(entry)
        elif op == "retire":
            try:
                self.registry.retire(str(record.get("key", "")))
            except ReproError:
                pass

    def admin_register(self, request: dict) -> tuple[int, dict]:
        """``POST /admin/pairs``: hot-register a pair.  201 when
        created, 200 when the identical pair was already present."""
        try:
            spec = spec_from_wire(request)
            entry, created = self.registry.register(spec)
        except SchemaError as error:
            # Inline schema text that does not parse/compile is the
            # *client's* mistake here, not server misconfiguration.
            raise MalformedRequestError(
                f"supplied schema is unusable: {error}"
            ) from None
        except OSError as error:
            raise MalformedRequestError(
                f"schema file unreadable: {error}"
            ) from None
        if created:
            if self.executor is not None:
                self.executor.register_pair(entry)
            if self._reload is not None:
                self._reload.append({"op": "register", "body": request})
        payload = {
            "created": created,
            "name": entry.name,
            "fingerprint": entry.fingerprint,
            "generation": self.registry.generation,
        }
        return (201 if created else 200), payload

    def admin_retire(self, key: str) -> dict:
        """``DELETE /admin/pairs/<key>``: retire a pair by name,
        fingerprint, or unique prefix."""
        entry = self.registry.retire(key)
        if self._reload is not None:
            self._reload.append({"op": "retire", "key": entry.fingerprint})
        return {
            "retired": entry.name,
            "fingerprint": entry.fingerprint,
            "generation": self.registry.generation,
        }

    # -- request handling (called from handler threads) ----------------------

    def handle_get(self, route: str) -> tuple[int, dict, dict]:
        """GET endpoints: (status, payload, extra headers).  These never
        pass admission — health probes must answer even at 2× load."""
        if route == "/healthz":
            draining = self._draining.is_set()
            payload = {
                "status": "draining" if draining else "ok",
                "ready": self.ready,
                "inflight": self.admission.inflight,
                "uptime_seconds": (
                    round(time.monotonic() - self.started_at, 3)
                    if self.started_at is not None
                    else 0.0
                ),
                "admission": self.admission.stats.as_dict(),
            }
            if self.executor is not None:
                payload["executor"] = self.executor.describe()
            return (503 if draining else 200), payload, {}
        if route == "/readyz":
            if self.ready:
                return 200, {
                    "ready": True,
                    "pairs": len(self.registry),
                    "warm_seconds": round(self.registry.warm_seconds, 3),
                    "generation": self.registry.generation,
                }, {}
            if self.warm_error is not None:
                payload = error_payload(self.warm_error)
                payload["ready"] = False
                return 503, payload, {}
            reason = (
                "draining" if self._draining.is_set() else "warming up"
            )
            return 503, {"ready": False, "reason": reason}, {
                "Retry-After": "1"
            }
        if route == "/pairs":
            return 200, {
                "pairs": self.registry.describe(),
                "generation": self.registry.generation,
            }, {}
        raise UnknownRouteError(f"no endpoint at {route}")

    def dispatch_post(self, route: str, request: dict,
                      deadline: Deadline) -> dict:
        kind = route.lstrip("/")
        if kind not in VALIDATION_KINDS:
            raise UnknownRouteError(f"no endpoint at {route}")
        entry = self.registry.get(require_str(request, "pair"))
        limits = self._residual_limits(entry, deadline)
        if self.executor is not None:
            from repro.service.executor import WireOutcomeError

            outcome = self.executor.submit(
                kind,
                entry,
                request,
                limits,
                residual_seconds=deadline.remaining(),
            )
            if outcome.status == 200:
                return outcome.payload
            raise WireOutcomeError(outcome)
        return perform_request(
            kind,
            entry.pair,
            request,
            limits,
            pair_name=entry.name,
            fingerprint=entry.fingerprint,
        )

    def _residual_limits(
        self, entry: RegisteredPair, deadline: Deadline
    ) -> Limits:
        return residual_limits(
            entry.limits, deadline.remaining(), deadline.budget
        )


class _RequestHandler(BaseHTTPRequestHandler):
    """One instance per connection; ``service`` is bound by
    :meth:`ValidationService.start` via a per-service subclass."""

    service: ValidationService  # overridden in the bound subclass
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    _GET_ROUTES = frozenset({"/healthz", "/readyz", "/pairs"})
    _POST_ROUTES = frozenset(
        {"/validate", "/cast", "/cast-with-mods", "/cast-chain"}
    )
    _ADMIN_ROUTE = "/admin/pairs"

    # -- plumbing ------------------------------------------------------------

    def setup(self) -> None:
        super().setup()
        #: Responses sent on this connection (keep-alive cap).
        self._requests_served = 0
        #: True while the current request's body bytes may still be
        #: sitting unread on the socket — a response in that state must
        #: close, or keep-alive would parse body bytes as the next
        #: request line.
        self._unread_body = False

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.service.config.log_requests:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _route(self) -> str:
        return self.path.split("?", 1)[0].rstrip("/") or "/"

    def _should_close(self) -> bool:
        """The keep-alive policy, decided per response."""
        config = self.service.config
        return (
            not config.keep_alive
            # The base class already set close_connection for HTTP/1.0
            # clients and explicit ``Connection: close`` requests.
            or self.close_connection
            or self._unread_body
            or self._requests_served >= config.max_requests_per_connection
            # Draining: finish this response, then free the connection
            # so await_idle() is not held hostage by idle keep-alives.
            or self.service.draining
        )

    def _send_json(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self._requests_served += 1
        if self._should_close():
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_error_response(self, error: BaseException) -> None:
        status = http_status(error)
        headers = {}
        hint = retry_after(error)
        if hint is not None:
            headers["Retry-After"] = str(max(1, round(hint)))
        elif status == 503:
            headers["Retry-After"] = "1"
        self._send_json(status, error_payload(error), headers)

    # -- request body --------------------------------------------------------

    def _read_body(self, deadline: Deadline) -> bytes:
        """Read exactly ``Content-Length`` bytes under the residual
        request deadline; every failure mode is a typed error."""
        header = self.headers.get("Content-Length")
        if header is None:
            raise LengthRequiredError(
                "POST requests must carry Content-Length"
            )
        try:
            length = int(header)
        except ValueError:
            raise MalformedRequestError(
                f"unparseable Content-Length {header!r}"
            ) from None
        if length < 0:
            raise MalformedRequestError(
                f"negative Content-Length {length}"
            )
        config = self.service.config
        bound = config.max_body_bytes
        if bound is None:
            bound = Limits().max_document_bytes
        if bound is not None:
            # The 413 happens HERE, on the header, before any read: an
            # adversarial Content-Length never costs a byte of buffering.
            check_document_size(
                length,
                Limits(max_document_bytes=bound),
                what="request body",
            )
        received = bytearray()
        try:
            while len(received) < length:
                remaining = deadline.remaining()
                if remaining <= 0:
                    raise RequestTimeoutError(
                        "request body arrived slower than the "
                        f"{deadline.budget:g}s request budget"
                    )
                self.connection.settimeout(remaining)
                want = min(config.read_chunk, length - len(received))
                try:
                    chunk = self.rfile.read(want)
                except (socket.timeout, TimeoutError):
                    raise RequestTimeoutError(
                        "request body arrived slower than the "
                        f"{deadline.budget:g}s request budget"
                    ) from None
                if not chunk:
                    raise TruncatedBodyError(
                        f"request body ended after {len(received)} of "
                        f"{length} promised bytes"
                    )
                received.extend(chunk)
        finally:
            # Restore the idle timeout: the per-read deadline pacing
            # must not leak into the next keep-alive request's header
            # wait.
            try:
                self.connection.settimeout(self.timeout)
            except OSError:
                pass
        # Every promised byte is consumed; this connection is safe to
        # keep alive whatever the response status turns out to be.
        self._unread_body = False
        return bytes(received)

    def _parse_request_json(self, body: bytes) -> dict:
        try:
            request = json.loads(body)
        except ValueError as error:
            raise MalformedRequestError(
                f"request body is not valid JSON: {error}"
            ) from None
        if not isinstance(request, dict):
            raise MalformedRequestError(
                "request body must be a JSON object"
            )
        return request

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server contract
        self._unread_body = False
        self._guarded(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802
        # Until _read_body consumes the promised bytes, any response
        # (shed, 411, 413, truncation...) must close the connection.
        self._unread_body = True
        self._guarded(self._handle_post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._unread_body = False
        self._guarded(self._handle_delete)

    def _guarded(self, handler: Callable[[], None]) -> None:
        from repro.service.executor import WireOutcomeError

        try:
            handler()
        except WireOutcomeError as error:
            self._try_send(
                lambda: self._send_wire_outcome(error.outcome)
            )
        except ReproError as error:
            self._try_send(lambda: self._send_error_response(error))
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 — structured 500
            self._try_send(lambda: self._send_error_response(error))

    def _try_send(self, send: Callable[[], None]) -> None:
        try:
            send()
        except OSError:
            self.close_connection = True

    def _send_wire_outcome(self, outcome) -> None:
        headers = {}
        if outcome.retry_after is not None:
            headers["Retry-After"] = str(
                max(1, round(outcome.retry_after))
            )
        elif outcome.status == 503:
            headers["Retry-After"] = "1"
        self._send_json(outcome.status, outcome.payload, headers)

    def _handle_get(self) -> None:
        route = self._route()
        if route in self._POST_ROUTES or (
            self._admin_enabled()
            and route.startswith(self._ADMIN_ROUTE)
        ):
            raise MethodNotAllowedError(f"{route} does not answer GET")
        status, payload, headers = self.service.handle_get(route)
        self._send_json(status, payload, headers)

    def _admin_enabled(self) -> bool:
        return self.service.config.admin

    def _check_admin_ready(self) -> None:
        service = self.service
        # Admin mutations bypass admission slots, so they must honor
        # the drain gate themselves — whichever layer flipped it.
        if service.draining or service.admission.draining:
            raise DrainingError("service is draining")
        if not service.registry.ready:
            raise NotReadyError("service warm-up has not finished")

    def _handle_post(self) -> None:
        service = self.service
        route = self._route()
        if route in self._GET_ROUTES:
            raise MethodNotAllowedError(f"{route} requires GET")
        if route == self._ADMIN_ROUTE and self._admin_enabled():
            # Admin mutations bypass admission slots — registering a
            # pair must succeed even while validation traffic is shed.
            self._check_admin_ready()
            deadline = Deadline(service.config.request_timeout)
            body = self._read_body(deadline)
            request = self._parse_request_json(body)
            status, payload = service.admin_register(request)
            self._send_json(status, payload)
            return
        if route.startswith(self._ADMIN_ROUTE) and self._admin_enabled():
            raise MethodNotAllowedError(
                f"{self._ADMIN_ROUTE}/<pair> answers DELETE"
            )
        if route not in self._POST_ROUTES:
            raise UnknownRouteError(f"no endpoint at {route}")
        if not service.registry.ready:
            if service.warm_error is not None:
                raise NotReadyError(
                    "service warm-up failed; see /readyz"
                )
            raise NotReadyError("service warm-up has not finished")
        client = self.client_address[0] if self.client_address else ""
        with service.admission.slot(client):
            # The request deadline starts when a slot is held — queue
            # wait was bounded separately — and everything downstream
            # spends from this one budget.
            deadline = Deadline(service.config.request_timeout)
            if service.after_admit_hook is not None:
                service.after_admit_hook(route)
            body = self._read_body(deadline)
            request = self._parse_request_json(body)
            payload = service.dispatch_post(route, request, deadline)
        self._send_json(200, payload)

    def _handle_delete(self) -> None:
        route = self._route()
        prefix = self._ADMIN_ROUTE + "/"
        if route == self._ADMIN_ROUTE and self._admin_enabled():
            raise MalformedRequestError(
                "DELETE /admin/pairs/<name-or-fingerprint>"
            )
        if not (route.startswith(prefix) and self._admin_enabled()):
            if route in self._GET_ROUTES or route in self._POST_ROUTES:
                raise MethodNotAllowedError(
                    f"{route} does not answer DELETE"
                )
            raise UnknownRouteError(f"no endpoint at {route}")
        self._check_admin_ready()
        key = route[len(prefix):]
        if not key:
            raise MalformedRequestError(
                "DELETE /admin/pairs/<name-or-fingerprint>"
            )
        payload = self.service.admin_retire(key)
        self._send_json(200, payload)
