"""The service's schema-pair registry: fingerprint-keyed, warmed at boot.

Schemas are known statically (the paper's premise), so the service
compiles every registered pair **before** accepting traffic: ``readyz``
flips only after :meth:`ServiceRegistry.warm` finishes.  Each pair is
addressable by its operator-chosen name *and* by its content
fingerprint (:func:`repro.schema.artifacts.pair_cache_key`), so a
client pinned to a fingerprint can never silently validate against
edited schema content — the key changes with the content.

Per-pair budgets follow the ``SCHEMA_CONFIG`` idiom: a
:class:`PairSpec` may carry its own :class:`~repro.guards.Limits`
(notably ``deadline_seconds``, the pair's per-request wall-clock
budget) overriding the service default — a complex schema gets a
tighter or looser deadline than the rest without touching global
configuration.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.guards import DEFAULT_LIMITS, Limits
from repro.schema.artifacts import (
    chain_cache_key,
    get_or_build,
    get_or_build_chain,
    pair_cache_key,
    schema_fingerprint,
)
from repro.schema.dtd import parse_dtd
from repro.schema.model import Schema
from repro.schema.registry import SchemaPair
from repro.schema.xsd import parse_xsd_file
from repro.service.errors import (
    MalformedRequestError,
    NotReadyError,
    PairConflictError,
    UnknownPairError,
)

__all__ = [
    "ChainSpec",
    "PairSpec",
    "RegisteredPair",
    "ServiceRegistry",
    "demo_chain_spec",
    "demo_specs",
]

#: Shortest fingerprint prefix accepted by lookup — long enough that a
#: typo cannot plausibly alias onto another registered pair.
MIN_FINGERPRINT_PREFIX = 8


def load_schema_file(path: str) -> Schema:
    """Load a schema file, dispatching on the extension (`.dtd` → DTD,
    anything else → XSD)."""
    if path.endswith(".dtd"):
        with open(path, encoding="utf-8") as handle:
            return parse_dtd(handle.read(), name=path)
    return parse_xsd_file(path)


@dataclass(frozen=True)
class PairSpec:
    """One pair to register: schema sources plus an optional budget.

    ``source``/``target`` are file paths (loaded at warm-up) or already
    parsed :class:`Schema` objects (embedded services, tests,
    benchmarks).  ``limits=None`` inherits the registry default.
    """

    name: str
    source: Union[str, Schema]
    target: Union[str, Schema]
    limits: Optional[Limits] = None


@dataclass(frozen=True)
class ChainSpec:
    """An S₁→…→Sₙ evolution chain to register as one composed pair.

    ``schemas`` are file paths or parsed :class:`Schema` objects, in
    evolution order (at least two).  The registry composes them into a
    single :class:`~repro.schema.chain.SchemaChain` pair at warm-up, so
    ``POST /cast-chain`` against the entry runs one fused pass with the
    per-hop sequential fallback intact.
    """

    name: str
    schemas: tuple[Union[str, Schema], ...]
    limits: Optional[Limits] = None


@dataclass(frozen=True)
class RegisteredPair:
    """A warmed pair plus everything a request handler needs."""

    name: str
    pair: SchemaPair
    #: Content fingerprint of the (source, target) pair — the stable
    #: client-visible address (see :func:`pair_cache_key`).  Chain
    #: entries use :func:`chain_cache_key` over every schema in order.
    fingerprint: str
    source_fingerprint: str
    target_fingerprint: str
    #: The per-request budget for this pair (``deadline_seconds`` is
    #: the pair's wall-clock allowance; size/depth/entity bounds guard
    #: its documents).
    limits: Limits
    from_cache: bool = False
    #: Number of schemas in the evolution chain this entry composes
    #: (0 for a plain two-schema pair).
    chain_length: int = 0


class ServiceRegistry:
    """All pairs the service will ever validate against, warmed once.

    Lookup accepts an operator name, a full pair fingerprint, or a
    unique fingerprint prefix of at least
    :data:`MIN_FINGERPRINT_PREFIX` hex digits.  Before :meth:`warm`
    completes every lookup raises :class:`NotReadyError` — the server
    maps that to 503, which is what makes ``readyz`` meaningful.
    """

    def __init__(
        self,
        specs: Sequence[Union[PairSpec, ChainSpec]],
        *,
        cache_dir: Optional[str] = None,
        default_limits: Optional[Limits] = None,
    ):
        if not specs:
            raise ValueError("a service registry needs at least one pair")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pair names in {names}")
        self._specs = list(specs)
        self._cache_dir = cache_dir
        self._default_limits = (
            DEFAULT_LIMITS if default_limits is None else default_limits
        )
        self._by_name: dict[str, RegisteredPair] = {}
        self._by_fingerprint: dict[str, RegisteredPair] = {}
        self._ready = False
        self.warm_seconds: float = 0.0
        #: Guards hot register/retire against concurrent handler threads;
        #: warm-up runs before traffic and needs no lock.
        self._mutate = threading.Lock()
        #: Bumped on every successful register/retire — observability
        #: for hot-reload tests and the ``/pairs`` watchers.
        self.generation = 0

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def ready(self) -> bool:
        return self._ready

    def warm(self) -> float:
        """Load, compile, and warm every registered pair; returns the
        wall-clock seconds spent.  Idempotent — a second call is free.

        With a ``cache_dir`` the compiled pair round-trips through the
        persisted-artifact cache (:func:`get_or_build`), so a restarted
        service warms from disk instead of recompiling.
        """
        if self._ready:
            return self.warm_seconds
        started = time.perf_counter()
        for spec in self._specs:
            entry = self._build_entry(spec)
            self._by_name[spec.name] = entry
            self._by_fingerprint[entry.fingerprint] = entry
        self.warm_seconds = time.perf_counter() - started
        self._ready = True
        return self.warm_seconds

    def _build_entry(
        self, spec: Union[PairSpec, ChainSpec]
    ) -> RegisteredPair:
        """Load, compile (or restore from the artifact cache), and wrap
        one spec — the single compilation point for boot warm-up and
        hot registration alike.  :class:`ChainSpec` entries compose
        their schemas into one chain pair (``chain_length`` > 0)."""
        if isinstance(spec, ChainSpec):
            return self._build_chain_entry(spec)
        source = (
            spec.source
            if isinstance(spec.source, Schema)
            else load_schema_file(spec.source)
        )
        target = (
            spec.target
            if isinstance(spec.target, Schema)
            else load_schema_file(spec.target)
        )
        from_cache = False
        if self._cache_dir is not None:
            pair, from_cache = get_or_build(
                source, target, self._cache_dir
            )
        else:
            pair = SchemaPair(source, target)
            pair.warm()
        return RegisteredPair(
            name=spec.name,
            pair=pair,
            fingerprint=pair_cache_key(source, target),
            source_fingerprint=schema_fingerprint(source),
            target_fingerprint=schema_fingerprint(target),
            limits=spec.limits or self._default_limits,
            from_cache=from_cache,
        )

    def _build_chain_entry(self, spec: ChainSpec) -> RegisteredPair:
        from repro.schema.chain import SchemaChain  # local: avoid cycle

        schemas = [
            entry
            if isinstance(entry, Schema)
            else load_schema_file(entry)
            for entry in spec.schemas
        ]
        from_cache = False
        if self._cache_dir is not None:
            pair, from_cache = get_or_build_chain(
                schemas, self._cache_dir
            )
        else:
            chain = SchemaChain(schemas, name=spec.name)
            pair = chain.composed_pair()
            chain.warm()
        return RegisteredPair(
            name=spec.name,
            pair=pair,
            fingerprint=chain_cache_key(schemas),
            source_fingerprint=schema_fingerprint(pair.source),
            target_fingerprint=schema_fingerprint(schemas[-1]),
            limits=spec.limits or self._default_limits,
            from_cache=from_cache,
            chain_length=len(pair.chain.schemas),
        )

    # -- hot reload (the admin plane) ----------------------------------------

    def register(self, spec: PairSpec) -> tuple[RegisteredPair, bool]:
        """Hot-register one pair on a live registry.

        Returns ``(entry, created)``.  Registering content that is
        already present under the same name is an idempotent no-op
        (``created=False``) — that is what makes journal-replayed
        registrations across a pre-fork fleet safe.  A name collision
        with *different* content is a :class:`PairConflictError`: a
        client pinned to the name must never silently start validating
        against edited schemas (re-register under a new name, or retire
        first).  Fingerprint addressing is what makes the swap
        race-free: in-flight requests hold their ``RegisteredPair``
        reference and finish against the pair they resolved.
        """
        if not self._ready:
            raise NotReadyError("registry warm-up has not finished")
        entry = self._build_entry(spec)
        with self._mutate:
            existing = self._by_name.get(spec.name)
            if existing is not None:
                if existing.fingerprint == entry.fingerprint:
                    return existing, False
                raise PairConflictError(
                    f"pair name {spec.name!r} is already registered "
                    f"with different schema content "
                    f"(fingerprint {existing.fingerprint[:12]}…); "
                    "retire it first or pick a new name"
                )
            held = self._by_fingerprint.get(entry.fingerprint)
            if held is not None:
                raise PairConflictError(
                    f"this schema content is already registered as "
                    f"{held.name!r} (fingerprint "
                    f"{held.fingerprint[:12]}…)"
                )
            self._specs.append(spec)
            self._by_name[spec.name] = entry
            self._by_fingerprint[entry.fingerprint] = entry
            self.generation += 1
        return entry, True

    def retire(self, key: str) -> RegisteredPair:
        """Remove a pair by name, fingerprint, or unique prefix.

        The entry disappears from lookup immediately; requests already
        holding it finish normally (they own a reference — nothing is
        torn down).  The last registered pair cannot be retired: a
        service with an empty registry can only answer 404, which is a
        misconfiguration, not an operation.
        """
        entry = self.get(key)
        with self._mutate:
            if len(self._specs) == 1:
                raise MalformedRequestError(
                    "cannot retire the last registered pair"
                )
            current = self._by_name.get(entry.name)
            if current is None or current.fingerprint != entry.fingerprint:
                raise UnknownPairError(
                    f"pair {key!r} was already retired"
                )
            del self._by_name[entry.name]
            del self._by_fingerprint[entry.fingerprint]
            self._specs = [
                spec for spec in self._specs if spec.name != entry.name
            ]
            self.generation += 1
        return entry

    def get(self, key: str) -> RegisteredPair:
        """The pair registered under ``key`` (name, fingerprint, or
        unique fingerprint prefix)."""
        if not self._ready:
            raise NotReadyError("registry warm-up has not finished")
        entry = self._by_name.get(key) or self._by_fingerprint.get(key)
        if entry is not None:
            return entry
        if (
            len(key) >= MIN_FINGERPRINT_PREFIX
            and all(c in "0123456789abcdef" for c in key)
        ):
            matches = [
                candidate
                for fingerprint, candidate in self._by_fingerprint.items()
                if fingerprint.startswith(key)
            ]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise UnknownPairError(
                    f"fingerprint prefix {key!r} is ambiguous "
                    f"({len(matches)} pairs match)"
                )
        raise UnknownPairError(f"no schema pair registered as {key!r}")

    def entries(self) -> list[RegisteredPair]:
        if not self._ready:
            raise NotReadyError("registry warm-up has not finished")
        return [self._by_name[spec.name] for spec in self._specs]

    def describe(self) -> list[dict]:
        """The ``GET /pairs`` payload: one record per registered pair.
        Chain entries additionally carry their ``chain_length``."""
        records = []
        for entry in self.entries():
            record = {
                "name": entry.name,
                "fingerprint": entry.fingerprint,
                "source_fingerprint": entry.source_fingerprint,
                "target_fingerprint": entry.target_fingerprint,
                "deadline_seconds": entry.limits.deadline_seconds,
                "max_document_bytes": entry.limits.max_document_bytes,
                "max_tree_depth": entry.limits.max_tree_depth,
                "from_cache": entry.from_cache,
            }
            if entry.chain_length:
                record["chain_length"] = entry.chain_length
            records.append(record)
        return records


def demo_specs(limits: Optional[Limits] = None) -> list[PairSpec]:
    """The paper's two purchase-order pairs as in-process specs — the
    zero-configuration registry behind ``repro serve --demo`` (CI smoke,
    quickstarts, benchmarks)."""
    from repro.workloads import purchase_orders as po

    return [
        PairSpec(
            "po-exp1",
            po.source_schema_experiment1(),
            po.target_schema_experiment1(),
            limits=limits,
        ),
        PairSpec(
            "po-exp2",
            po.source_schema_experiment2(),
            po.target_schema_experiment2(),
            limits=limits,
        ),
    ]


def demo_chain_spec(limits: Optional[Limits] = None) -> ChainSpec:
    """A three-hop purchase-order drift chain (quantity bound tightening,
    then billTo becoming required) for ``--demo-chain`` smoke runs and
    the chain service tests."""
    from repro.workloads import purchase_orders as po

    return ChainSpec(
        "po-chain",
        (
            po.purchase_order_schema(
                billto_optional=True, quantity_max_exclusive=400
            ),
            po.purchase_order_schema(
                billto_optional=True, quantity_max_exclusive=200
            ),
            po.purchase_order_schema(
                billto_optional=False, quantity_max_exclusive=100
            ),
        ),
        limits=limits,
    )
