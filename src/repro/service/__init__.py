"""Validation-as-a-service: the hardened HTTP front door.

The paper's setup — schemas known statically, documents arriving at
runtime — is exactly the shape of a long-lived service.  This package
wraps the preprocessed-pair pipeline in a stdlib-only threaded HTTP
server whose core is a *robustness* layer, not a router:

* :mod:`repro.service.registry` — schema pairs keyed by content
  fingerprint, warmed at boot, each with its own per-request budget
  (the ``SCHEMA_CONFIG`` idiom: a complex schema gets a tighter or
  looser deadline than the default).
* :mod:`repro.service.admission` — bounded concurrency with a bounded
  wait queue, load shedding (``503`` + ``Retry-After``), and per-client
  token-bucket rate limiting (``429``).
* :mod:`repro.service.server` — the endpoints (``POST /validate``,
  ``POST /cast``, ``POST /cast-with-mods``, ``GET /healthz``,
  ``GET /readyz``, ``GET /pairs``), per-request deadlines whose
  *residual* budget propagates into parsing and validation, and
  SIGTERM graceful drain.
* :mod:`repro.service.diagnostics` — the structured JSON diagnostic
  shape (message, line/column, Dewey path, machine error code) shared
  with the CLI and batch driver, plus the ``ReproError`` → HTTP status
  mapping that guarantees adversarial input never produces a bare 500.
* :mod:`repro.service.executor` — a resident pool of validation worker
  processes handler threads dispatch to, so CPU-bound casts from many
  connections run truly in parallel (zero-copy pair transport, crash
  recovery, worker recycling).
* :mod:`repro.service.prefork` — the ``SO_REUSEPORT`` pre-fork front:
  N acceptor processes on one port, fleet-wide SIGTERM drain with an
  aggregated admitted == completed invariant.
* :mod:`repro.service.reload` — the append-only journal that carries
  ``/admin/pairs`` hot register/retire mutations across the pre-fork
  fleet.

See ``docs/ROBUSTNESS.md`` § "Service-level guards" for the contract.
"""

from repro.service.admission import AdmissionController, AdmissionStats
from repro.service.diagnostics import http_status
from repro.service.errors import (
    DrainingError,
    MalformedRequestError,
    NotReadyError,
    OverloadedError,
    PairConflictError,
    RateLimitedError,
    RequestTimeoutError,
    ServiceError,
    TruncatedBodyError,
    UnknownPairError,
)
from repro.service.executor import FleetExecutor
from repro.service.prefork import PreforkServer, reuse_port_supported
from repro.service.registry import PairSpec, ServiceRegistry, demo_specs
from repro.service.reload import ReloadJournal
from repro.service.server import ServiceConfig, ValidationService

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "DrainingError",
    "FleetExecutor",
    "MalformedRequestError",
    "NotReadyError",
    "OverloadedError",
    "PairConflictError",
    "PairSpec",
    "PreforkServer",
    "RateLimitedError",
    "ReloadJournal",
    "RequestTimeoutError",
    "ServiceConfig",
    "ServiceError",
    "ServiceRegistry",
    "TruncatedBodyError",
    "UnknownPairError",
    "ValidationService",
    "demo_specs",
    "http_status",
    "reuse_port_supported",
]
