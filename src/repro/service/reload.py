"""Hot-reload journal: admin mutations propagated across a pre-fork
fleet.

A multi-process ``repro serve`` has N independent registries (each
child warmed its own copy at boot).  When ``POST /admin/pairs`` lands
on one child, the other N-1 must learn about the new pair without a
restart and without any parent-mediated broadcast channel.  The journal
is that channel: an append-only JSON-lines file the mutating child
appends to and every child polls.

The protocol leans entirely on idempotence instead of coordination:

* **Appends are atomic.**  One record is one ``write(2)`` on an
  ``O_APPEND`` descriptor — POSIX guarantees concurrent appenders never
  interleave bytes (records are far below ``PIPE_BUF``-scale sizes
  where that guarantee is ironclad for regular files).
* **Replay is idempotent.**  A register record that names content
  already present is a no-op; a retire record for a pair already gone
  is a no-op.  So a child may safely re-apply its *own* records, a
  respawned child replays the whole journal from offset zero to catch
  up on every mutation it missed, and duplicate delivery is harmless.
* **Torn tails are tolerated.**  A reader stops at the last complete
  line; a partially flushed record is picked up whole on the next poll.

Records carry the original *wire* request (file paths or inline schema
text), never compiled objects — each child compiles the pair itself, so
the journal stays small and schema-version-proof.

Point different deployments at different journal paths; replaying a
stale journal is by design (that is what catches respawned children
up), so a fresh deployment should start with a fresh file — the
pre-fork front creates a per-run journal automatically when none is
configured.
"""

from __future__ import annotations

import json
import os
from typing import Iterator

__all__ = ["ReloadJournal"]


class ReloadJournal:
    """One process's handle on the shared reload journal.

    ``append`` is safe from any number of processes concurrently;
    ``poll`` is single-consumer per instance (it tracks a private read
    offset).
    """

    def __init__(self, path: str):
        self.path = path
        self._offset = 0
        # Tail bytes of a record that straddled the previous poll.
        self._carry = b""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Touch so pollers never race file creation.
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        os.close(fd)

    def append(self, record: dict) -> None:
        """Durably append one mutation record (atomic single write)."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def poll(self) -> Iterator[dict]:
        """Yield every complete record appended since the last poll
        (including our own — application is idempotent).  Unparseable
        lines are skipped: one corrupt record must not wedge the
        reload pipeline fleet-wide."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
        except OSError:
            return
        if not data:
            return
        self._offset += len(data)
        data = self._carry + data
        lines = data.split(b"\n")
        # A chunk not ending in a newline leaves a torn tail; carry it
        # into the next poll instead of parsing half a record.
        self._carry = lines.pop()
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record
