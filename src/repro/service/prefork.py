"""Pre-fork multi-process front: N acceptors, one port, one drain.

One ``repro serve`` process is pinned to roughly one core: the handler
threads share a GIL, and even fleet-dispatched validation still funnels
every accept, parse, and response through one interpreter.
:class:`PreforkServer` runs N full service processes — each its own
:class:`~repro.service.server.ValidationService` with its own warmed
registry, admission controller, and (optionally) fleet executor —
all accepting on the *same* TCP port:

* **SO_REUSEPORT** (preferred): every child binds its own listening
  socket with ``SO_REUSEPORT``; the kernel hashes incoming connections
  across them.  No shared accept lock, no thundering herd.  For
  ``port=0`` the parent first *reserves* a concrete port with a bound
  (never listening) ``SO_REUSEPORT`` socket, so all children bind the
  same number.
* **Inherited-listener fallback**: where ``SO_REUSEPORT`` does not
  exist, the parent binds + listens once and each forked child adopts
  the inherited socket; the kernel wakes one blocked ``accept()`` per
  connection.

**Admission is per-process** (documented semantics rather than a
shared token budget): each child owns ``max_concurrent`` slots and its
own queue, so fleet-wide capacity is ``N × max_concurrent`` and a
client's token bucket is per-child.  This keeps the admission hot path
lock-local and free of cross-process coordination; the trade-off —
shedding decisions are made on local load, which under kernel
round-robin tracks global load closely — is recorded in
``docs/ROBUSTNESS.md`` §7.

**Drain is fleet-wide**: the parent forwards SIGTERM/SIGINT to every
child, each child drains independently (in-flight requests finish,
admitted == completed per child), and the parent aggregates the
per-child admission summaries into one line::

    drained: admitted=N completed=N lost=0 processes=P

``lost`` must be zero — that is the PR 7 invariant, now fleet-wide.

**Crash resilience**: a child that dies outside a drain is respawned
(bounded by a crash budget); the respawn replays the shared
:class:`~repro.service.reload.ReloadJournal` from offset zero, so it
comes back knowing every hot-registered pair.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import tempfile
import time
from dataclasses import replace
from typing import Optional, Sequence

from repro.service.registry import PairSpec, ServiceRegistry
from repro.service.server import ServiceConfig, ValidationService

__all__ = ["PreforkServer", "reuse_port_supported"]


def reuse_port_supported() -> bool:
    """Whether this platform can bind N sockets to one port."""
    return hasattr(socket, "SO_REUSEPORT")


def _reserve_port(host: str, port: int) -> tuple[socket.socket, int]:
    """Bind (but never listen) a ``SO_REUSEPORT`` socket so ``port=0``
    resolves to one concrete number every child can share.  The reserve
    socket receives no connections — only listeners do — and is closed
    once the children are up."""
    reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        reserve.bind((host, port))
        return reserve, reserve.getsockname()[1]
    except BaseException:
        reserve.close()
        raise


def _child_main(
    index: int,
    registry: ServiceRegistry,
    config: ServiceConfig,
    host: str,
    port: int,
    listener: Optional[socket.socket],
    ready_queue,
    summary_queue,
) -> None:
    """One acceptor process: a complete ValidationService of its own.

    ``registry`` was warmed **in the parent before the fork**, so every
    child inherits the compiled pair tables copy-on-write — one
    compilation for the whole fleet, zero pickles.  Post-fork the
    copies are independent: hot reload mutates each child's registry
    separately, coordinated only through the journal.

    Reports ``(index, port, warm_seconds)`` on ``ready_queue`` once
    traffic-ready (or ``(index, -1, error_text)`` on a failed boot) and
    its admission summary on ``summary_queue`` at exit.
    """
    # The child must not inherit the parent's signal dispositions for
    # the drain window between fork and install_signal_handlers.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    service = ValidationService(registry, config)
    try:
        service.start(
            host,
            port,
            reuse_port=listener is None,
            listen_socket=listener,
        )
        service.install_signal_handlers()
        if not service.wait_ready(timeout=120.0):
            raise RuntimeError(
                f"warm-up failed: {service.warm_error or 'timeout'}"
            )
    except BaseException as error:  # noqa: BLE001 — reported to parent
        ready_queue.put((index, -1, f"{type(error).__name__}: {error}"))
        os._exit(1)
    ready_queue.put((index, service.port, registry.warm_seconds))
    code = service.run_forever()
    stats = service.admission.stats
    summary_queue.put((index, stats.admitted, stats.completed))
    # Flush the queue's feeder thread before the hard exit, or the
    # summary dies in the pickle buffer.
    summary_queue.close()
    summary_queue.join_thread()
    # Skip interpreter teardown races with daemon handler threads.
    os._exit(code)


class PreforkServer:
    """The parent: spawns, watches, respawns, drains, aggregates."""

    #: Unexpected child deaths the parent will cover with respawns.
    crash_budget = 4

    def __init__(
        self,
        specs: Sequence[PairSpec],
        config: Optional[ServiceConfig] = None,
        *,
        processes: int,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[str] = None,
    ):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        import multiprocessing

        self.specs = list(specs)
        self.processes = processes
        self.host = host
        self.cache_dir = cache_dir
        config = config or ServiceConfig()
        if config.reload_journal is None:
            # A per-run journal: hot registrations reach every child
            # (and every future respawn) through it.
            fd, journal = tempfile.mkstemp(
                prefix="repro-serve-reload-", suffix=".jsonl"
            )
            os.close(fd)
            self._own_journal = journal
            config = replace(config, reload_journal=journal)
        else:
            self._own_journal = None
        self.config = config
        self._ctx = multiprocessing.get_context("fork")
        self._ready_queue = self._ctx.Queue()
        self._summary_queue = self._ctx.Queue()
        self._registry: Optional[ServiceRegistry] = None
        self._children: dict[int, object] = {}
        self._listener: Optional[socket.socket] = None
        self._reserve: Optional[socket.socket] = None
        self._draining = False
        self._crashes = 0
        self.port = port
        self.warm_seconds = 0.0
        #: Fleet-wide admission totals, filled at drain.
        self.admitted = 0
        self.completed = 0
        self.summaries: dict[int, tuple[int, int]] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Resolve the port, fork the children, wait until every child
        is traffic-ready.  Returns the bound ``(host, port)``."""
        if self._children:
            raise RuntimeError("prefork server already started")
        # Compile once, fork many: children inherit the warmed pair
        # tables copy-on-write.
        self._registry = ServiceRegistry(
            self.specs, cache_dir=self.cache_dir
        )
        self.warm_seconds = self._registry.warm()
        if reuse_port_supported():
            self._reserve, self.port = _reserve_port(self.host, self.port)
        else:
            # Fallback: one parent-bound listener inherited across fork.
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            listener.bind((self.host, self.port))
            listener.listen(128)
            self._listener = listener
            self.port = listener.getsockname()[1]
        for index in range(self.processes):
            self._spawn(index)
        self._await_ready(self.processes)
        if self._reserve is not None:
            # Children hold the port now; the reservation has done its
            # job.
            self._reserve.close()
            self._reserve = None
        return self.host, self.port

    def _spawn(self, index: int) -> None:
        process = self._ctx.Process(
            target=_child_main,
            args=(
                index,
                self._registry,
                self.config,
                self.host,
                self.port,
                self._listener,
                self._ready_queue,
                self._summary_queue,
            ),
            name=f"repro-serve-{index}",
        )
        process.start()
        self._children[index] = process

    def _await_ready(self, count: int, timeout: float = 180.0) -> None:
        deadline = time.monotonic() + timeout
        seen = 0
        while seen < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.kill()
                raise RuntimeError("children failed to become ready")
            try:
                index, port, warm = self._ready_queue.get(
                    timeout=min(remaining, 1.0)
                )
            except Exception:
                continue
            if port < 0:
                self.kill()
                raise RuntimeError(f"child {index} failed to boot: {warm}")
            self.warm_seconds = max(self.warm_seconds, float(warm))
            seen += 1

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → fleet-wide drain (main thread only)."""

        def _handle(signum, frame):  # noqa: ARG001
            self.begin_drain()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def begin_drain(self) -> None:
        """Forward the drain signal to every child.  Idempotent and
        signal-safe (kill(2) is async-signal-safe; nothing here
        allocates or locks)."""
        if self._draining:
            return
        self._draining = True
        for process in self._children.values():
            if process.is_alive() and process.pid:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except OSError:
                    pass

    def run_forever(self) -> int:
        """Watch the fleet: respawn crashed children (bounded), wait
        out the drain, aggregate summaries.  Returns the exit code — 0
        only for a clean fleet-wide drain with zero lost requests."""
        failed = False
        while True:
            self._drain_summaries()
            alive = {
                i: p for i, p in self._children.items() if p.is_alive()
            }
            if not alive:
                break
            if not self._draining:
                for index, process in list(self._children.items()):
                    if process.is_alive():
                        continue
                    code = process.exitcode
                    self._crashes += 1
                    failed = failed or self._crashes > self.crash_budget
                    sys.stderr.write(
                        f"repro-serve[{index}] exited "
                        f"unexpectedly (code {code}); "
                        + (
                            "respawning\n"
                            if self._crashes <= self.crash_budget
                            else "crash budget exhausted\n"
                        )
                    )
                    if self._crashes <= self.crash_budget:
                        self._spawn(index)
            time.sleep(0.2)
        self._drain_summaries(final=True)
        lost = self.admitted - self.completed
        print(
            f"drained: admitted={self.admitted} "
            f"completed={self.completed} lost={lost} "
            f"processes={self.processes}",
            flush=True,
        )
        bad_exit = any(
            p.exitcode not in (0, None) for p in self._children.values()
        )
        self._cleanup()
        return 1 if (failed or bad_exit or lost != 0) else 0

    def _drain_summaries(self, final: bool = False) -> None:
        while True:
            try:
                index, admitted, completed = self._summary_queue.get(
                    timeout=0.5 if final else 0.0
                )
            except Exception:
                if not final:
                    return
                # One extra grace read, then give up.
                try:
                    index, admitted, completed = self._summary_queue.get(
                        timeout=1.0
                    )
                except Exception:
                    return
            self.summaries[index] = (admitted, completed)
            self.admitted = sum(a for a, _ in self.summaries.values())
            self.completed = sum(c for _, c in self.summaries.values())

    def drain(self, timeout: Optional[float] = None) -> int:
        """:meth:`begin_drain` + :meth:`run_forever` with a bound."""
        self.begin_drain()
        budget = (
            self.config.drain_grace + 10.0 if timeout is None else timeout
        )
        deadline = time.monotonic() + budget
        for process in self._children.values():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        return self.run_forever()

    def kill(self) -> None:
        """Immediate teardown (boot failures, tests)."""
        for process in self._children.values():
            if process.is_alive():
                process.terminate()
        for process in self._children.values():
            process.join(timeout=2.0)
        self._cleanup()

    def _cleanup(self) -> None:
        if self._reserve is not None:
            self._reserve.close()
            self._reserve = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for q in (self._ready_queue, self._summary_queue):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        if self._own_journal is not None:
            try:
                os.unlink(self._own_journal)
            except OSError:
                pass
            self._own_journal = None
