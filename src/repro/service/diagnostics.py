"""Structured JSON diagnostics and the error → HTTP status contract.

One diagnostic shape serves every consumer — the HTTP service, the CLI,
and the batch driver's ``DocumentResult`` — and it is deliberately the
shape a CodeMirror-lint client consumes: ``message``, 1-based
``line``/``column`` where known, the Dewey ``path`` of the offending
node where known, a stable machine ``code``, and a ``severity``.

The status mapping is the "no bare 500" guarantee: every class in the
``ReproError`` taxonomy — pipeline and service branches alike — resolves
to a deliberate status code, and anything outside the taxonomy (a bug)
collapses to a *structured* 500 with code ``internal`` rather than a
traceback.  Adversarial input therefore cannot produce an unmapped
response: oversized → 413, slow/expired → 408, depth/entity/state
blowups → 422, malformed envelope or document → 400, unknown pair →
404, bursts → 429, overload/drain → 503.
"""

from __future__ import annotations

from typing import Optional

from repro.core.result import ValidationReport
from repro.errors import (
    INTERNAL_CODE,
    ChainMismatchError,
    DeadlineExceededError,
    DocumentTooLargeError,
    ReproError,
    ResourceLimitError,
    SchemaError,
    UnsafeUpdateProgramError,
    UpdateError,
    XMLSyntaxError,
    error_code,
)
from repro.service.errors import (
    LengthRequiredError,
    MalformedRequestError,
    MethodNotAllowedError,
    NotReadyError,
    OverloadedError,
    PairConflictError,
    RateLimitedError,
    RequestTimeoutError,
    ServiceError,
    UnknownPairError,
    UnknownRouteError,
)

__all__ = [
    "diagnostic",
    "diagnostics_from_error",
    "error_payload",
    "http_status",
    "report_payload",
    "retry_after",
]

#: Ordered (class, status) table; first ``isinstance`` match wins, so
#: subclasses must precede their bases.  Every ``ReproError`` ends on
#: the final catch-all row — the taxonomy can grow without a KeyError.
_STATUS_TABLE: tuple[tuple[type, int], ...] = (
    # Resource limits: the three that describe the *request* get their
    # own statuses; the rest are unprocessable content.
    (DocumentTooLargeError, 413),
    (DeadlineExceededError, 408),
    (ResourceLimitError, 422),
    # Service-contract errors.
    (RequestTimeoutError, 408),
    (LengthRequiredError, 411),
    (UnknownPairError, 404),
    (UnknownRouteError, 404),
    (MethodNotAllowedError, 405),
    (PairConflictError, 409),
    (RateLimitedError, 429),
    (NotReadyError, 503),
    (OverloadedError, 503),  # covers DrainingError
    (MalformedRequestError, 400),  # covers TruncatedBodyError
    (ServiceError, 400),
    # Pipeline errors surfaced by a posted document or mod list.
    (XMLSyntaxError, 400),
    (UpdateError, 400),
    # Evolution-chain contract: a chain operation against a non-chain
    # pair (or a malformed chain) is a client addressing mistake; a
    # program that fails a ``require_safe`` demand is well-formed but
    # unprocessable under that pair.
    (ChainMismatchError, 400),
    (UnsafeUpdateProgramError, 422),
    # A schema problem is a *server-side* misconfiguration: the client
    # cannot fix it by changing the request.
    (SchemaError, 500),
    (ReproError, 400),
)


def http_status(error: BaseException) -> int:
    """The deliberate HTTP status for any exception (500 for bugs)."""
    for cls, status in _STATUS_TABLE:
        if isinstance(error, cls):
            return status
    return 500


def retry_after(error: BaseException) -> Optional[float]:
    """The ``Retry-After`` hint an admission rejection carries."""
    value = getattr(error, "retry_after", None)
    return float(value) if value is not None else None


def diagnostic(
    message: str,
    code: str,
    *,
    line: int = 0,
    column: int = 0,
    path: str = "",
    severity: str = "error",
) -> dict:
    """One lint-style diagnostic; zero/empty positions are omitted."""
    data: dict = {"message": message, "code": code, "severity": severity}
    if line:
        data["line"] = line
        data["column"] = column
    if path:
        data["path"] = path
    return data


def diagnostics_from_error(error: BaseException) -> list[dict]:
    """The diagnostics array for a failed request (one entry, carrying
    whatever position the error knows: line/column for syntax errors,
    Dewey path for validation errors)."""
    return [
        diagnostic(
            str(error),
            error_code(error),
            line=getattr(error, "line", 0) or 0,
            column=getattr(error, "column", 0) or 0,
            path=getattr(error, "path", "") or "",
        )
    ]


def error_payload(error: BaseException) -> dict:
    """The JSON body of a non-200 response.

    ``ReproError`` renders its own ``to_dict()``; anything else — a bug
    — becomes an opaque ``internal`` record (message withheld: internals
    never leak to the wire).
    """
    if isinstance(error, ReproError):
        return {
            "error": error.to_dict(),
            "diagnostics": diagnostics_from_error(error),
        }
    return {
        "error": {"code": INTERNAL_CODE, "message": "internal server error"},
        "diagnostics": [],
    }


def report_payload(
    report: ValidationReport,
    *,
    pair: str = "",
    fingerprint: str = "",
    elapsed_ms: Optional[float] = None,
) -> dict:
    """The 200 body for a completed validation: the verdict plus a
    diagnostics array (empty when valid, one entry with the failure
    reason and Dewey path when not)."""
    diagnostics: list[dict] = []
    if not report.valid:
        diagnostics.append(
            diagnostic(
                report.reason or "document is invalid",
                "validation-failed",
                path=report.path or "",
            )
        )
    payload: dict = {"valid": report.valid, "diagnostics": diagnostics}
    if pair:
        payload["pair"] = pair
    if fingerprint:
        payload["fingerprint"] = fingerprint
    if elapsed_ms is not None:
        payload["elapsed_ms"] = round(elapsed_ms, 3)
    return payload
